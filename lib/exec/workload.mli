(** Pure workloads wired to the real executor behind one signature:
    the simulator's benchmarks ([lib/workloads]) doing {e real} work on
    {e real} domains, with results reduced to a deterministic [int]
    checksum (float checksums compare bit-for-bit because the parallel
    kernels reduce in reference order). *)

module type S = sig
  val name : string

  (** What [size] means for this workload. *)
  val size_doc : string

  val default_size : int

  (** Small size for tests and CI smoke runs. *)
  val quick_size : int

  (** Parallel run; degrades to sequential outside a {!Pool}. *)
  val run : size:int -> unit -> int

  (** Sequential reference checksum (never sparks). *)
  val reference : size:int -> int
end

module Sumeuler : S
module Parfib_w : S
module Matmul : S
module Mandelbrot_w : S
module Apsp_w : S

(** Every wired workload, in presentation order. *)
val all : (module S) list

val names : string list
val find : string -> (module S) option
