(** Effects-based fiber runtime over the {!Repro_exec.Pool} domain
    pool: multiplex 100k+ suspendable tasks on N domains.

    The paper's task model is a {e spark} — an atomic closure that runs
    to completion, so one blocked task wedges an entire capability.
    This module supplies the other half of OCaml 5's design split
    ("Retrofitting Parallelism onto OCaml", PAPERS.md): domains for
    parallelism, effects for concurrency.  A {e fiber} is a computation
    that can suspend; its continuation is a heap value that travels
    through the pool's existing Chase–Lev deques like any other task,
    so stealing, parking and tracing all keep working unchanged.

    Scheduling model:

    - every fiber segment (from birth or resume to the next suspension
      point) is a plain [unit -> unit] pool task, executed by the
      worker loop under the fiber's effect handler
      ([Effect.Deep.match_with] installed at {!spawn});
    - [perform Suspend] captures the one-shot continuation, wraps its
      resume in {!Promise.once} (so a racing canceller cannot double
      resume), parks it on the fiber record and hands it to the waker
      — for {!await} that is {!Promise.add_waiter}'s CAS list, whose
      protocol [lib/check] model-checks (the resume-before-park mutant
      deadlocks; the production order cannot lose the wakeup);
    - resumes of unpinned fibers re-enter the pool through
      [Pool.push_plain] onto the resuming worker's own deque — LIFO hot
      and {e stealable}, so a burst of wakeups rebalances across
      domains; pinned fibers and {!yield}s go through the FIFO inbox
      lane ([Pool.inject_on]) instead, because re-pushing a yield onto
      the owner's LIFO deque would pop it right back and starve
      everything below it.

    A fiber blocked on a promise therefore costs its domain nothing:
    the worker that ran it simply takes the next task.  The domain only
    parks when every deque and inbox is empty — the pool's existing
    wake-generation handshake. *)

module A = Repro_shim.Tatomic.Real
module M = Repro_metrics.Metrics
module Pool = Repro_exec.Pool

exception Cancelled

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
        (** [Suspend register]: capture the continuation, build the
            once-wrapped resume and pass it to [register], which hands
            it to whatever will eventually fire it. *)
  | Yield : unit Effect.t

(* Deadline timer shared by every [sleep] in one scheduler: a single
   service domain (spawned lazily on first use) owns a deadline-sorted
   queue and fires the once-wrapped resumes as deadlines pass.  Fired
   resumes re-enter the pool like any other wakeup. *)
type timer = {
  t_lock : Mutex.t;
  t_cond : Condition.t;
  mutable t_queue : (int * (unit -> unit)) list;  (* (deadline_ns, fire), sorted *)
  mutable t_stop : bool;
  mutable t_dom : unit Domain.t option;
}

type sched = {
  pool : Pool.t;
  next_fid : int A.t;
  spawned : int A.t;
  completed : int A.t;  (* finished with a value *)
  cancelled : int A.t;  (* finished by cancellation *)
  failed : int A.t;  (* finished with any other exception *)
  suspends : int A.t;
  resumes : int A.t;
  yields : int A.t;
  live : int A.t;
  high_water : int A.t;
  lifetime : M.histogram;
  timer : timer;
  mutable mtoken : M.collector option;
}

type fiber = {
  fid : int;
  sched : sched;
  pin : int option;  (* worker id this fiber is pinned to, if any *)
  cancelled_f : bool A.t;
  parked : (unit -> unit) option A.t;
      (* the once-wrapped resume while suspended: a canceller exchanges
         it out and fires it, waking the fiber into [discontinue] *)
  kids : (Mutex.t * (int, fiber) Hashtbl.t) option A.t;
      (* children registry for cancellation propagation; created lazily
         by the owner on first spawn (atomic cell + mutex so a racing
         canceller sees both the registry and its contents — see
         [do_cancel]) *)
  parent : fiber option;
  birth_ns : int;
}

type 'a handle = { h_fb : fiber; h_done : 'a Promise.t }

type stats = {
  s_spawned : int;
  s_completed : int;
  s_cancelled : int;
  s_failed : int;
  s_suspends : int;
  s_resumes : int;
  s_yields : int;
  s_live : int;
  s_high_water : int;
}

(* ------------------------------------------------------------------ *)
(* Current fiber                                                       *)
(* ------------------------------------------------------------------ *)

(* Set around every fiber segment (first run and each resume), on
   whichever domain executes it; restored when the segment suspends or
   finishes, so plain pool tasks interleaved on the same worker never
   observe a stale fiber binding. *)
let current_key : fiber option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get current_key

let self_exn name =
  match current () with
  | Some fb -> fb
  | None -> invalid_arg (name ^ ": not running inside Fiber.run")

let with_fiber fb g =
  let saved = Domain.DLS.get current_key in
  Domain.DLS.set current_key (Some fb);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key saved) g

(* Cancellation is visible transitively: a child spawned in the window
   while its parent's registry snapshot was being taken still observes
   the ancestor's flag at its next suspension point. *)
let rec tainted fb =
  A.get fb.cancelled_f
  || match fb.parent with Some p -> tainted p | None -> false

(* ------------------------------------------------------------------ *)
(* Enqueueing fiber segments into the pool                             *)
(* ------------------------------------------------------------------ *)

(* Starts and promise-wakeups: stealable when unpinned (own deque via
   push_plain), inbox when pinned or fired from outside the pool. *)
let enqueue fb task =
  let pool = fb.sched.pool in
  match fb.pin with
  | Some i -> Pool.inject_on pool i task
  | None -> (
      match Pool.current () with
      | Some ctx when Pool.ctx_pool ctx == pool -> Pool.push_plain ctx task
      | _ -> Pool.inject pool task)

(* Yields: always the FIFO inbox lane of the current (or pinned)
   worker, so the yielder goes to the back of the line instead of being
   LIFO-popped straight back. *)
let enqueue_yield fb task =
  let pool = fb.sched.pool in
  match fb.pin with
  | Some i -> Pool.inject_on pool i task
  | None -> (
      match Pool.current () with
      | Some ctx when Pool.ctx_pool ctx == pool ->
          Pool.inject_on pool (Pool.ctx_id ctx) task
      | _ -> Pool.inject pool task)

(* ------------------------------------------------------------------ *)
(* Lifecycle accounting                                                *)
(* ------------------------------------------------------------------ *)

let bump_live s =
  let l = A.fetch_and_add s.live 1 + 1 in
  let rec raise_hw () =
    let h = A.get s.high_water in
    if l > h && not (A.compare_and_set s.high_water h l) then raise_hw ()
  in
  raise_hw ()

let finish fb res on_done =
  let s = fb.sched in
  (match res with
  | Ok _ -> A.incr s.completed
  | Error Cancelled -> A.incr s.cancelled
  | Error _ -> A.incr s.failed);
  if M.enabled M.default then M.observe s.lifetime (M.now_ns () - fb.birth_ns);
  (* Unregister from the parent so a long-lived parent's registry does
     not accumulate dead children. *)
  (match fb.parent with
  | Some p -> (
      match A.get p.kids with
      | Some (kl, kt) ->
          Mutex.lock kl;
          Hashtbl.remove kt fb.fid;
          Mutex.unlock kl
      | None -> ())
  | None -> ());
  (* Resolve before the live decrement: a driver that has seen
     [live = 0] must also see every completion value. *)
  on_done res;
  A.decr s.live

(* ------------------------------------------------------------------ *)
(* Suspension points                                                   *)
(* ------------------------------------------------------------------ *)

(* Resume a parked segment: re-check cancellation on the way in so a
   fiber cancelled while suspended wakes into Cancelled (running its
   Fun.protect cleanups) instead of its normal continuation. *)
let step fb (k : (unit, unit) Effect.Deep.continuation) () =
  with_fiber fb (fun () ->
      if tainted fb then Effect.Deep.discontinue k Cancelled
      else Effect.Deep.continue k ())

let on_suspend fb register (k : (unit, unit) Effect.Deep.continuation) =
  let s = fb.sched in
  A.incr s.suspends;
  let resume =
    Promise.once (fun () ->
        A.incr s.resumes;
        A.set fb.parked None;
        enqueue fb (step fb k))
  in
  (* Publish the parked resume *before* handing it to the waker and
     before the cancellation re-check: a canceller either finds it in
     [parked] (and fires it) or set [cancelled_f] early enough for the
     re-check below to fire it ourselves.  The once-guard makes the
     double-fire benign.  [lib/check]'s resume-before-park mutant shows
     the reverse order losing the wakeup. *)
  A.set fb.parked (Some resume);
  register resume;
  if A.get fb.cancelled_f then resume ()

let on_yield fb (k : (unit, unit) Effect.Deep.continuation) =
  A.incr fb.sched.yields;
  enqueue_yield fb (step fb k)

(* Launch a fiber: its whole life runs under this handler, segment by
   segment, on whatever workers pick the segments up. *)
let start fb comp on_done =
  let task () =
    with_fiber fb (fun () ->
        Effect.Deep.match_with
          (fun () ->
            if tainted fb then raise Cancelled;
            comp ())
          ()
          {
            retc = (fun v -> finish fb (Ok v) on_done);
            exnc = (fun e -> finish fb (Error e) on_done);
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Suspend register ->
                    Some
                      (fun (k : (a, _) Effect.Deep.continuation) ->
                        on_suspend fb register k)
                | Yield ->
                    Some
                      (fun (k : (a, _) Effect.Deep.continuation) ->
                        on_yield fb k)
                | _ -> None);
          })
  in
  enqueue fb task

(* ------------------------------------------------------------------ *)
(* Public suspension API                                               *)
(* ------------------------------------------------------------------ *)

let[@sanctioned_blocking] rec await p =
  match Promise.peek p with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None ->
      ignore (self_exn "Fiber.await");
      Effect.perform (Suspend (fun resume -> Promise.add_waiter p resume));
      (* A resume fired by a canceller re-enters via [discontinue], so
         reaching this point means the promise resolved; the loop only
         re-suspends on a spurious wakeup. *)
      await p

let[@sanctioned_blocking] yield () =
  ignore (self_exn "Fiber.yield");
  Effect.perform Yield

(* ------------------------------------------------------------------ *)
(* Sleep (deadline timer service domain)                               *)
(* ------------------------------------------------------------------ *)

let rec insert_deadline ((d, _) as entry) = function
  | [] -> [ entry ]
  | ((d', _) as hd) :: tl ->
      if d <= d' then entry :: hd :: tl else hd :: insert_deadline entry tl

(* The timer domain's drain loop: a dedicated *service* domain, not a
   pool worker — parking on its condition variable (queue empty) and
   micro-sleeping toward the earliest deadline are its designed
   blocking points, hence the sanctioned_blocking marker. *)
let[@sanctioned_blocking] rec timer_loop tm =
  Mutex.lock tm.t_lock;
  let action =
    if tm.t_stop then `Stop
    else
      match tm.t_queue with
      | [] -> `Wait
      | (deadline, fire) :: rest ->
          let now = M.now_ns () in
          if deadline <= now then begin
            tm.t_queue <- rest;
            `Fire fire
          end
          else `Sleep (deadline - now)
  in
  (match action with `Wait -> Condition.wait tm.t_cond tm.t_lock | _ -> ());
  Mutex.unlock tm.t_lock;
  match action with
  | `Stop -> ()
  | `Wait -> timer_loop tm
  | `Fire fire ->
      fire ();
      timer_loop tm
  | `Sleep ns ->
      (* chunked so a newly inserted earlier deadline or a stop request
         is noticed within 2 ms *)
      Unix.sleepf (Float.min (float_of_int ns *. 1e-9) 2e-3);
      timer_loop tm

let timer_create () =
  {
    t_lock = Mutex.create ();
    t_cond = Condition.create ();
    t_queue = [];
    t_stop = false;
    t_dom = None;
  }

let timer_stop tm =
  Mutex.lock tm.t_lock;
  tm.t_stop <- true;
  Condition.signal tm.t_cond;
  let dom = tm.t_dom in
  tm.t_dom <- None;
  Mutex.unlock tm.t_lock;
  match dom with Some d -> Domain.join d | None -> ()

let[@sanctioned_blocking] sleep secs =
  let fb = self_exn "Fiber.sleep" in
  if secs > 0. then begin
    let tm = fb.sched.timer in
    let deadline = M.now_ns () + int_of_float (secs *. 1e9) in
    Effect.perform
      (Suspend
         (fun resume ->
           Mutex.lock tm.t_lock;
           if tm.t_dom = None && not tm.t_stop then
             tm.t_dom <- Some (Domain.spawn (fun () -> timer_loop tm));
           tm.t_queue <- insert_deadline (deadline, resume) tm.t_queue;
           Condition.signal tm.t_cond;
           Mutex.unlock tm.t_lock))
  end
  else yield ()

(* ------------------------------------------------------------------ *)
(* Spawning, joining, cancelling                                       *)
(* ------------------------------------------------------------------ *)

let new_fiber s ~pin ~parent =
  {
    fid = A.fetch_and_add s.next_fid 1;
    sched = s;
    pin;
    cancelled_f = A.make false;
    parked = A.make None;
    kids = A.make None;
    parent;
    birth_ns = M.now_ns ();
  }

let rec do_cancel fb =
  if not (A.exchange fb.cancelled_f true) then begin
    (* Flag first, registry snapshot second: a spawn whose child missed
       this snapshot reads the flag after registering (spawn's
       registry CS is ordered with ours by the mutex) and cancels the
       child itself. *)
    (match A.get fb.kids with
    | Some (kl, kt) ->
        Mutex.lock kl;
        let kids = Hashtbl.fold (fun _ c acc -> c :: acc) kt [] in
        Mutex.unlock kl;
        List.iter do_cancel kids
    | None -> ());
    match A.exchange fb.parked None with
    | Some resume -> resume ()
    | None -> ()
  end

let launch parent ?pin f =
  let s = parent.sched in
  (match pin with
  | Some i when i < 0 || i >= Pool.cores s.pool ->
      invalid_arg "Fiber.spawn_on: worker id out of range"
  | _ -> ());
  let child = new_fiber s ~pin ~parent:(Some parent) in
  (* Register with the parent before the cancellation check (see
     do_cancel for the ordering argument). *)
  let kl, kt =
    match A.get parent.kids with
    | Some kk -> kk
    | None ->
        let kk = (Mutex.create (), Hashtbl.create 8) in
        A.set parent.kids (Some kk);
        kk
  in
  Mutex.lock kl;
  Hashtbl.replace kt child.fid child;
  Mutex.unlock kl;
  A.incr s.spawned;
  bump_live s;
  let h_done = Promise.create () in
  start child f (fun res ->
      match res with
      | Ok v -> ignore (Promise.try_fulfil h_done v)
      | Error e -> ignore (Promise.try_break h_done e));
  if A.get parent.cancelled_f then do_cancel child;
  { h_fb = child; h_done }

let spawn f = launch (self_exn "Fiber.spawn") f
let spawn_on i f = launch (self_exn "Fiber.spawn_on") ~pin:i f
let promise_of h = h.h_done

let[@sanctioned_blocking] join h = await h.h_done

let cancel h = do_cancel h.h_fb
let is_cancelled h = A.get h.h_fb.cancelled_f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_samples s =
  let c name help cell =
    M.c_sample ~help name (float_of_int (A.get cell))
  in
  [
    c "repro_fiber_spawned_total" "Fibers spawned (including roots)" s.spawned;
    c "repro_fiber_completed_total" "Fibers finished with a value" s.completed;
    c "repro_fiber_cancelled_total" "Fibers finished by cancellation"
      s.cancelled;
    c "repro_fiber_failed_total" "Fibers finished with an exception" s.failed;
    c "repro_fiber_suspends_total" "Fiber suspensions (await/sleep parks)"
      s.suspends;
    c "repro_fiber_resumes_total" "Fiber resumes re-enqueued into the pool"
      s.resumes;
    c "repro_fiber_yields_total" "Voluntary yields" s.yields;
    M.g_sample ~help:"Fibers currently live" "repro_fiber_live"
      (float_of_int (A.get s.live));
    M.g_sample ~help:"High-water mark of concurrently live fibers"
      "repro_fiber_live_max"
      (float_of_int (A.get s.high_water));
  ]

let stats_of s =
  {
    s_spawned = A.get s.spawned;
    s_completed = A.get s.completed;
    s_cancelled = A.get s.cancelled;
    s_failed = A.get s.failed;
    s_suspends = A.get s.suspends;
    s_resumes = A.get s.resumes;
    s_yields = A.get s.yields;
    s_live = A.get s.live;
    s_high_water = A.get s.high_water;
  }

let stats () = stats_of (self_exn "Fiber.stats").sched
let in_fiber () = Option.is_some (current ())

(* ------------------------------------------------------------------ *)
(* Running a scheduler                                                 *)
(* ------------------------------------------------------------------ *)

let make_sched pool =
  {
    pool;
    next_fid = A.make 0;
    spawned = A.make 0;
    completed = A.make 0;
    cancelled = A.make 0;
    failed = A.make 0;
    suspends = A.make 0;
    resumes = A.make 0;
    yields = A.make 0;
    live = A.make 0;
    high_water = A.make 0;
    lifetime =
      M.histogram ~help:"Fiber lifetime, birth to completion (ns)"
        "repro_fiber_lifetime_ns";
    timer = timer_create ();
    mtoken = None;
  }

let retire s =
  timer_stop s.timer;
  match s.mtoken with
  | Some tok ->
      s.mtoken <- None;
      M.remove_collector tok
  | None -> ()

(* Worker 0 drives the pool until every fiber is done.  Helping runs
   queued segments directly; the backoff only engages when every
   runnable segment is on some other domain. *)
let drive s ctx =
  let idle = ref 0 in
  while A.get s.live > 0 do
    if Pool.help ctx then idle := 0
    else begin
      incr idle;
      Domain.cpu_relax ();
      if !idle > 512 then Unix.sleepf 1e-4
    end
  done

let run_in pool f =
  let s = make_sched pool in
  s.mtoken <- Some (M.add_collector ~name:"fiber" (fun () -> metrics_samples s));
  Fun.protect
    ~finally:(fun () -> retire s)
    (fun () ->
      Pool.run pool (fun () ->
          let result = ref None in
          let root = new_fiber s ~pin:None ~parent:None in
          A.incr s.spawned;
          bump_live s;
          start root f (fun res -> result := Some res);
          let ctx =
            match Pool.current () with Some c -> c | None -> assert false
          in
          drive s ctx;
          match !result with
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> failwith "Fiber.run_in: quiescent with root unfinished"))

let run ?cores ?tracer f =
  let pool = Pool.create ?cores ?tracer () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> run_in pool f)

(* Install the Future.force integration: inside a fiber, a forcer with
   nothing to help with yields the *fiber* (its segment goes to the
   back of the worker's FIFO lane) instead of spinning or sleeping the
   domain — so a force on a future evaluated elsewhere never starves
   the other fibers multiplexed on this worker. *)
let () =
  Pool.fiber_yield :=
    fun () ->
      match Domain.DLS.get current_key with
      | Some _ ->
          Effect.perform Yield;
          true
      | None -> false
