(** Effects-based fiber runtime over the {!Repro_exec.Pool} domain
    pool.

    Fibers are suspendable tasks multiplexed onto the pool's workers:
    {!await} parks the {e fiber} (its continuation joins the promise's
    waiter list), never the domain — the worker simply runs the next
    task, and the woken continuation re-enters the pool through the
    per-worker Chase–Lev deques so stealing keeps working.  100k+
    concurrent fibers on 2 domains is the designed operating point
    ([repro_cli exec --fibers], [bench --fiber-overhead]).

    Structured concurrency: fibers are spawned from inside a fiber
    ({!run} provides the root), form a tree, and {!cancel} propagates
    down it; {!run} returns only once every fiber in the tree is done.

    All lifecycle events flow into {!Repro_metrics} under
    [repro_fiber_*] while a scheduler is live. *)

exception Cancelled
(** Raised inside a fiber at its next suspension point (or entry) after
    {!cancel}; also the result of {!join} on a cancelled fiber. *)

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
        (** [perform (Suspend register)] parks the current fiber and
            hands [register] an idempotent resume thunk; fire it (from
            any domain) to re-enqueue the fiber.  This is the extension
            point {!await} and {!sleep} are built on. *)
  | Yield : unit Effect.t

type 'a handle
(** A spawned fiber plus its completion promise. *)

type stats = {
  s_spawned : int;
  s_completed : int;
  s_cancelled : int;
  s_failed : int;
  s_suspends : int;
  s_resumes : int;
  s_yields : int;
  s_live : int;
  s_high_water : int;  (** max simultaneously live fibers *)
}

(** {2 Running} *)

val run : ?cores:int -> ?tracer:Repro_exec.Tracer.t -> (unit -> 'a) -> 'a
(** [run f] creates a pool, runs [f] as the root fiber and drives the
    pool until {e every} fiber is done; returns [f]'s value or re-raises
    its exception.  Not reentrant. *)

val run_in : Repro_exec.Pool.t -> (unit -> 'a) -> 'a
(** Same on an existing pool (the caller's domain becomes worker 0 for
    the duration, as with [Pool.run]).  The pool survives for reuse. *)

(** {2 Inside a fiber} *)

val spawn : (unit -> 'a) -> 'a handle
(** Child fiber of the current fiber; its first segment is pushed onto
    the current worker's deque (stealable).
    @raise Invalid_argument outside a fiber. *)

val spawn_on : int -> (unit -> 'a) -> 'a handle
(** Pin the child to a worker id: every segment (start, resumes,
    yields) goes through that worker's FIFO inbox lane.
    @raise Invalid_argument if the id is out of range. *)

val await : 'a Promise.t -> 'a
(** Park this fiber until the promise resolves; raises the promise's
    exception if it was broken.  The domain keeps running other
    tasks. *)

val join : 'a handle -> 'a
(** {!await} the fiber's completion promise (raises {!Cancelled} if it
    was cancelled, or its escaping exception). *)

val promise_of : 'a handle -> 'a Promise.t

val yield : unit -> unit
(** Reschedule to the back of this worker's FIFO lane — cooperative
    fairness between fibers sharing a domain. *)

val sleep : float -> unit
(** Park this fiber for at least the given seconds (a shared deadline
    timer domain fires the resume; the pool's domains stay free). *)

val cancel : _ handle -> unit
(** Request cancellation of the fiber and, recursively, its children.
    Parked fibers are woken into {!Cancelled} immediately; running ones
    observe it at their next suspension point.  Idempotent. *)

val is_cancelled : _ handle -> bool

val stats : unit -> stats
(** Live scheduler counters, from inside a fiber. *)

val in_fiber : unit -> bool
(** [true] when the calling code runs inside a fiber (any domain). *)
