(** Write-once promises with a lock-free waiter list — the fiber
    layer's synchronisation cell.

    A promise is a single atomic state word: [Pending waiters] until
    someone resolves it, then [Fulfilled v] or [Broken e] forever.
    Both sides race on that one word with CAS, which is what closes the
    classic lost-wakeup window between "I checked and it was pending"
    and "I parked":

    - {!add_waiter} CAS-conses the callback onto the pending list.  If
      the CAS loses to a resolver the retry observes the resolved state
      and runs the callback {e itself}, so registering against an
      already-resolved promise degenerates to an immediate call — the
      waiter never sleeps on a value that is already there.
    - {!try_fulfil}/{!try_break} CAS [Pending ws] to the resolved state
      and then run the captured waiters in registration order.  Exactly
      one resolver wins; the losers see the resolved state and report
      [false].

    Callbacks are [unit -> unit] thunks, invoked on whichever domain
    completes the race; the fiber layer wraps each continuation resume
    in {!once} so the resume survives being raced by a canceller (both
    paths may fire the thunk; the body runs exactly once).

    The module is a functor over the {!Repro_shim.Tatomic.S} atomics
    shim, so [lib/check] explores this exact code under its DPOR
    scheduler (see the [promise-*] protocol configurations); the
    toplevel instance is the zero-cost [Real] alias. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t
  val of_value : 'a -> 'a t
  val peek : 'a t -> ('a, exn) result option
  val is_resolved : 'a t -> bool
  val once : (unit -> unit) -> unit -> unit
  val add_waiter : 'a t -> (unit -> unit) -> unit
  val try_fulfil : 'a t -> 'a -> bool
  val try_break : 'a t -> exn -> bool
  val fulfil : 'a t -> 'a -> unit
  val break : 'a t -> exn -> unit
end

module Make (A : Repro_shim.Tatomic.S) = struct
  type 'a state =
    | Pending of (unit -> unit) list  (** waiters, most recently added first *)
    | Fulfilled of 'a
    | Broken of exn

  type 'a t = 'a state A.t

  let create () = A.make (Pending [])
  let of_value v = A.make (Fulfilled v)

  let peek p =
    match A.get p with
    | Fulfilled v -> Some (Ok v)
    | Broken e -> Some (Error e)
    | Pending _ -> None

  let is_resolved p = match A.get p with Pending _ -> false | _ -> true

  (* Exactly-once thunk: the CAS on [fired] decides the unique winner
     when several paths (normal wakeup, cancellation) race to run it. *)
  let once f =
    let fired = A.make false in
    fun () -> if A.compare_and_set fired false true then f ()

  let rec add_waiter p k =
    match A.get p with
    | Pending ws as prev ->
        if not (A.compare_and_set p prev (Pending (k :: ws))) then
          add_waiter p k
    | Fulfilled _ | Broken _ -> k ()

  (* Resolve to [st] and run the waiters captured by the winning CAS.
     Waiters added concurrently with the resolution either made it onto
     the list this CAS captured, or their add_waiter retry sees the
     resolved state and self-runs — nobody is stranded. *)
  let rec resolve p (st : 'a state) =
    match A.get p with
    | Pending ws as prev ->
        if A.compare_and_set p prev st then begin
          List.iter (fun k -> k ()) (List.rev ws);
          true
        end
        else resolve p st
    | Fulfilled _ | Broken _ -> false

  let try_fulfil p v = resolve p (Fulfilled v)
  let try_break p e = resolve p (Broken e)

  let fulfil p v =
    if not (try_fulfil p v) then
      invalid_arg "Promise.fulfil: promise already resolved"

  let break p e =
    if not (try_break p e) then
      invalid_arg "Promise.break: promise already resolved"
end

include Make (Repro_shim.Tatomic.Real)
