(** Write-once promises with a lock-free CAS waiter list.

    The cell the fiber runtime parks on: a waiter registered with
    {!add_waiter} is guaranteed to run exactly when the promise
    resolves — the CAS on the single state word means either the
    waiter's cons lands before the resolver's transition (the resolver
    runs it) or the waiter observes the resolved state and runs the
    callback itself.  [lib/check] model-checks this handshake
    exhaustively against the DPOR scheduler (configs [promise-*]),
    including the resume-before-park mutant this design rules out. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t

  val of_value : 'a -> 'a t
  (** An already-fulfilled promise. *)

  val peek : 'a t -> ('a, exn) result option
  (** [None] while pending. *)

  val is_resolved : 'a t -> bool

  val once : (unit -> unit) -> unit -> unit
  (** [once f] is a thunk that runs [f] on its first call and nothing
      on every later call, decided by a CAS — safe to hand to several
      racing wakers (fulfiller vs canceller). *)

  val add_waiter : 'a t -> (unit -> unit) -> unit
  (** Register a callback to run on resolution, in registration order.
      Runs it immediately (on the calling domain) if the promise is
      already resolved.  Callbacks must not raise. *)

  val try_fulfil : 'a t -> 'a -> bool
  (** [true] iff this call performed the transition; runs the waiters
      before returning. *)

  val try_break : 'a t -> exn -> bool

  val fulfil : 'a t -> 'a -> unit
  (** @raise Invalid_argument if already resolved. *)

  val break : 'a t -> exn -> unit
  (** @raise Invalid_argument if already resolved. *)
end

module Make (A : Repro_shim.Tatomic.S) : S

include S
