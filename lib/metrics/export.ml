module Json = Repro_util.Json_out
module Json_in = Repro_util.Json_in
module M = Metrics

(* ---------------- OpenMetrics text ---------------- *)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let escape_label s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let labels_str = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") labels)
      ^ "}"

let chop suffix name =
  if Filename.check_suffix name suffix then
    Some (String.sub name 0 (String.length name - String.length suffix))
  else None

let base_name s =
  match s.M.s_value with
  | M.Counter _ -> ( match chop "_total" s.M.s_name with Some b -> b | None -> s.M.s_name)
  | _ -> s.M.s_name

let kind_str = function
  | M.Counter _ -> "counter"
  | M.Gauge _ -> "gauge"
  | M.Hist _ -> "histogram"

let emit_sample buf base s =
  match s.M.s_value with
  | M.Counter v ->
      Buffer.add_string buf
        (Printf.sprintf "%s_total%s %s\n" base (labels_str s.M.s_labels) (fmt_value v))
  | M.Gauge v ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" base (labels_str s.M.s_labels) (fmt_value v))
  | M.Hist h ->
      let le v = s.M.s_labels @ [ ("le", v) ] in
      let cum = ref 0 in
      List.iter
        (fun (i, n) ->
          cum := !cum + n;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" base
               (labels_str
                  (le (fmt_value (float_of_int (Hdr.upper_bound ~sub_bits:h.Hdr.sub_bits i)))))
               !cum))
        h.Hdr.buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" base (labels_str (le "+Inf")) h.Hdr.count);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" base (labels_str s.M.s_labels)
           (fmt_value (float_of_int h.Hdr.sum)));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" base (labels_str s.M.s_labels) h.Hdr.count)

let openmetrics snap =
  (* Group samples into families (same base name) preserving
     first-appearance order; one HELP/TYPE header per family. *)
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun s ->
      let base = base_name s in
      match Hashtbl.find_opt tbl base with
      | None ->
          Hashtbl.add tbl base (kind_str s.M.s_value, s.M.s_help, ref [ s ]);
          order := base :: !order
      | Some (_, _, samples) -> samples := s :: !samples)
    snap.M.samples;
  let buf = Buffer.create 4096 in
  List.iter
    (fun base ->
      let kind, help, samples = Hashtbl.find tbl base in
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" base (escape_help help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind);
      List.iter
        (fun s -> if kind_str s.M.s_value = kind then emit_sample buf base s)
        (List.rev !samples))
    (List.rev !order);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ---------------- format check ---------------- *)

exception Bad of string

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name name =
  name <> ""
  && is_name_start name.[0]
  && String.for_all is_name_char name

let parse_number tok =
  match tok with
  | "+Inf" | "Inf" | "-Inf" | "NaN" -> ()
  | _ -> (
      match float_of_string_opt tok with
      | Some _ -> ()
      | None -> raise (Bad (Printf.sprintf "malformed number %S" tok)))

(* Returns the sample's metric name after checking the full line
   shape: name, optional {k="v",...} labels, value, optional
   timestamp. *)
let parse_sample_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let expect c =
    if peek () = Some c then incr pos
    else raise (Bad (Printf.sprintf "expected %C at column %d" c (!pos + 1)))
  in
  if n = 0 then raise (Bad "blank line");
  if not (is_name_start line.[0]) then raise (Bad "sample must start with a metric name");
  while !pos < n && is_name_char line.[!pos] do incr pos done;
  let name = String.sub line 0 !pos in
  (if peek () = Some '{' then begin
     incr pos;
     let rec labels () =
       let k0 = !pos in
       while !pos < n && is_name_char line.[!pos] && line.[!pos] <> ':' do incr pos done;
       if !pos = k0 then raise (Bad "empty label name");
       expect '=';
       expect '"';
       let rec value () =
         match peek () with
         | None -> raise (Bad "unterminated label value")
         | Some '"' -> incr pos
         | Some '\\' ->
             pos := !pos + 2;
             value ()
         | Some _ ->
             incr pos;
             value ()
       in
       value ();
       match peek () with
       | Some ',' ->
           incr pos;
           labels ()
       | Some '}' -> incr pos
       | _ -> raise (Bad "expected ',' or '}' after label")
     in
     labels ()
   end);
  expect ' ';
  let rest = String.sub line !pos (n - !pos) in
  (match String.split_on_char ' ' rest with
  | [ v ] -> parse_number v
  | [ v; ts ] ->
      parse_number v;
      parse_number ts
  | _ -> raise (Bad "trailing tokens after sample value"));
  name

let om_types =
  [ "counter"; "gauge"; "histogram"; "summary"; "unknown"; "info"; "stateset"; "gaugehistogram" ]

let validate_openmetrics text =
  let families = Hashtbl.create 32 in
  let sample_ok name =
    let fam base tys =
      match Hashtbl.find_opt families base with
      | Some ty -> List.mem ty tys
      | None -> false
    in
    fam name [ "gauge"; "unknown"; "info"; "stateset" ]
    || (match chop "_total" name with Some b -> fam b [ "counter" ] | None -> false)
    || (match chop "_bucket" name with
       | Some b -> fam b [ "histogram"; "gaugehistogram" ]
       | None -> false)
    || (match chop "_sum" name with
       | Some b -> fam b [ "histogram"; "summary" ]
       | None -> false)
    || (match chop "_count" name with
       | Some b -> fam b [ "histogram"; "summary" ]
       | None -> false)
    ||
    match chop "_created" name with Some b -> fam b [ "counter"; "histogram" ] | None -> false
  in
  let len = String.length text in
  if len = 0 || text.[len - 1] <> '\n' then Error "text must end with a newline"
  else
    let lines = String.split_on_char '\n' (String.sub text 0 (len - 1)) in
    let last = List.length lines - 1 in
    let check i line =
      if line = "# EOF" then begin
        if i <> last then raise (Bad "content after # EOF")
      end
      else if String.length line >= 2 && String.sub line 0 2 = "# " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; ty ] ->
            if not (valid_name name) then raise (Bad ("invalid family name " ^ name));
            if not (List.mem ty om_types) then raise (Bad ("unknown metric type " ^ ty));
            if Hashtbl.mem families name then raise (Bad ("duplicate TYPE for " ^ name));
            Hashtbl.add families name ty
        | "#" :: "HELP" :: name :: _ ->
            if not (valid_name name) then raise (Bad ("invalid family name " ^ name))
        | "#" :: "UNIT" :: name :: _ ->
            if not (valid_name name) then raise (Bad ("invalid family name " ^ name))
        | _ -> raise (Bad "malformed comment line")
      end
      else if String.length line > 0 && line.[0] = '#' then
        raise (Bad "comment lines must start with '# '")
      else begin
        let name = parse_sample_line line in
        if not (sample_ok name) then
          raise (Bad ("sample " ^ name ^ " has no matching # TYPE family"))
      end
    in
    try
      if List.nth lines last <> "# EOF" then Error "missing # EOF terminator"
      else begin
        List.iteri
          (fun i line ->
            try check i line with Bad m -> raise (Bad (Printf.sprintf "line %d: %s" (i + 1) m)))
          lines;
        Ok ()
      end
    with Bad m -> Error m

(* ---------------- time-series JSON ---------------- *)

let series_to_json ?(meta = []) snaps =
  Json.Obj
    ([ ("schema", Json.Str "repro/metrics-series/v1") ]
    @ meta
    @ [ ("snapshots", Json.List (List.map M.snapshot_to_json snaps)) ])

let series_of_json j =
  match j with
  | Json.Obj kvs -> (
      (match List.assoc_opt "schema" kvs with
      | Some (Json.Str "repro/metrics-series/v1") -> ()
      | _ -> invalid_arg "Export.series_of_json: bad schema");
      match Option.bind (Json_in.member "snapshots" j) Json_in.to_list with
      | Some l -> List.map M.snapshot_of_json l
      | None -> invalid_arg "Export.series_of_json: missing snapshots")
  | _ -> invalid_arg "Export.series_of_json: not an object"

let write_series ?meta path snaps =
  let tmp = path ^ ".tmp" in
  Json.to_file tmp (series_to_json ?meta snaps);
  Sys.rename tmp path
