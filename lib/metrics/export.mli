(** Snapshot exporters: OpenMetrics/Prometheus text and time-series
    JSON documents built from {!Metrics.snapshot} values. *)

val openmetrics : Metrics.snapshot -> string
(** OpenMetrics text: [# HELP] / [# TYPE] per metric family, counter
    samples with the [_total] suffix, histograms as cumulative
    [_bucket{le="..."}] series plus [_sum] / [_count], terminated by
    [# EOF]. *)

val validate_openmetrics : string -> (unit, string) result
(** Structural format check: every line is a well-formed comment or
    sample, every sample belongs to a family declared by a preceding
    [# TYPE] line with the right suffix for its type, numbers parse,
    and the text ends with exactly one [# EOF] line.  [Error msg]
    pinpoints the first offending line. *)

val series_to_json :
  ?meta:(string * Repro_util.Json_out.t) list ->
  Metrics.snapshot list ->
  Repro_util.Json_out.t
(** Time-series document, schema ["repro/metrics-series/v1"]. *)

val series_of_json : Repro_util.Json_out.t -> Metrics.snapshot list
(** @raise Invalid_argument on malformed input. *)

val write_series : ?meta:(string * Repro_util.Json_out.t) list -> string -> Metrics.snapshot list -> unit
(** Atomically (write + rename) writes the series document so live
    readers ([repro_cli top]) never observe a torn file. *)
