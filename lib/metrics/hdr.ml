let default_sub_bits = 5

(* Position of the highest set bit of [v > 0].  Branchy binary search:
   six comparisons, no allocation (the stdlib exposes no clz). *)
let msb v =
  let n = if v lsr 32 <> 0 then 32 else 0 in
  let v = v lsr n in
  let k = if v lsr 16 <> 0 then 16 else 0 in
  let n = n + k and v = v lsr k in
  let k = if v lsr 8 <> 0 then 8 else 0 in
  let n = n + k and v = v lsr k in
  let k = if v lsr 4 <> 0 then 4 else 0 in
  let n = n + k and v = v lsr k in
  let k = if v lsr 2 <> 0 then 2 else 0 in
  let n = n + k and v = v lsr k in
  if v lsr 1 <> 0 then n + 1 else n

let nbuckets ~sub_bits = (63 - sub_bits) lsl sub_bits

let index_of ~sub_bits v =
  if v <= 0 then 0
  else
    let sub = 1 lsl sub_bits in
    if v < sub then v
    else
      (* [b >= 1] power-of-two bucket, [2^sub_bits] linear sub-buckets
         inside it: the bucket keeps the top [sub_bits + 1] significant
         bits of [v], so its width is [2^(b-1) <= v / 2^sub_bits]. *)
      let b = msb v - sub_bits + 1 in
      (b lsl sub_bits) + (v lsr (b - 1)) - sub

let lower_bound ~sub_bits i =
  let sub = 1 lsl sub_bits in
  if i < sub then i
  else
    let b = i lsr sub_bits and r = i land (sub - 1) in
    (sub + r) lsl (b - 1)

let upper_bound ~sub_bits i =
  let sub = 1 lsl sub_bits in
  if i < sub then i
  else
    let b = i lsr sub_bits and r = i land (sub - 1) in
    ((sub + r + 1) lsl (b - 1)) - 1

let midpoint ~sub_bits i =
  (float_of_int (lower_bound ~sub_bits i) +. float_of_int (upper_bound ~sub_bits i))
  /. 2.

type snapshot = {
  sub_bits : int;
  buckets : (int * int) list;
  count : int;
  sum : int;
  min_v : int;
  max_v : int;
}

let empty ?(sub_bits = default_sub_bits) () =
  { sub_bits; buckets = []; count = 0; sum = 0; min_v = max_int; max_v = min_int }

let merge a b =
  if a.sub_bits <> b.sub_bits then invalid_arg "Hdr.merge: sub_bits mismatch";
  let rec go xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (i, n) :: xt, (j, m) :: yt ->
        if i < j then (i, n) :: go xt ys
        else if j < i then (j, m) :: go xs yt
        else (i, n + m) :: go xt yt
  in
  {
    sub_bits = a.sub_bits;
    buckets = go a.buckets b.buckets;
    count = a.count + b.count;
    sum = a.sum + b.sum;
    min_v = min a.min_v b.min_v;
    max_v = max a.max_v b.max_v;
  }

let quantile s q =
  if s.count = 0 then 0.
  else
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int s.count))) in
    let rec go cum = function
      | [] -> float_of_int s.max_v
      | (i, n) :: rest ->
          if cum + n >= rank then midpoint ~sub_bits:s.sub_bits i
          else go (cum + n) rest
    in
    (* Clamping to the observed extremes only tightens the estimate. *)
    Float.max (float_of_int s.min_v) (Float.min (float_of_int s.max_v) (go 0 s.buckets))

let mean s = if s.count = 0 then 0. else float_of_int s.sum /. float_of_int s.count

module Json = Repro_util.Json_out
module Json_in = Repro_util.Json_in

let to_json s =
  Json.Obj
    [
      ("sub_bits", Json.Int s.sub_bits);
      ("count", Json.Int s.count);
      ("sum", Json.Int s.sum);
      (* Sentinels of an empty histogram exceed JSON integer precision;
         serialise zeros and restore the sentinels on read. *)
      ("min", Json.Int (if s.count = 0 then 0 else s.min_v));
      ("max", Json.Int (if s.count = 0 then 0 else s.max_v));
      ( "buckets",
        Json.List
          (List.map (fun (i, n) -> Json.List [ Json.Int i; Json.Int n ]) s.buckets) );
    ]

let of_json j =
  let bad msg = invalid_arg ("Hdr.of_json: " ^ msg) in
  let geti key =
    match Option.bind (Json_in.member key j) Json_in.to_int with
    | Some v -> v
    | None -> bad ("missing int field " ^ key)
  in
  let count = geti "count" in
  let buckets =
    match Option.bind (Json_in.member "buckets" j) Json_in.to_list with
    | None -> bad "missing buckets"
    | Some l ->
        List.map
          (function
            | Json.List [ i; n ] -> (
                match (Json_in.to_int i, Json_in.to_int n) with
                | Some i, Some n -> (i, n)
                | _ -> bad "non-int bucket")
            | _ -> bad "malformed bucket")
          l
  in
  {
    sub_bits = geti "sub_bits";
    count;
    sum = geti "sum";
    min_v = (if count = 0 then max_int else geti "min");
    max_v = (if count = 0 then min_int else geti "max");
    buckets;
  }

module Local = struct
  type t = {
    sub_bits : int;
    cells : int array;
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;
    mutable max_v : int;
  }

  let create ?(sub_bits = default_sub_bits) () =
    {
      sub_bits;
      cells = Array.make (nbuckets ~sub_bits) 0;
      count = 0;
      sum = 0;
      min_v = max_int;
      max_v = min_int;
    }

  let observe t v =
    let v = if v < 0 then 0 else v in
    let i = index_of ~sub_bits:t.sub_bits v in
    t.cells.(i) <- t.cells.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let snapshot t =
    let buckets = ref [] in
    for i = Array.length t.cells - 1 downto 0 do
      if t.cells.(i) <> 0 then buckets := (i, t.cells.(i)) :: !buckets
    done;
    {
      sub_bits = t.sub_bits;
      buckets = !buckets;
      count = t.count;
      sum = t.sum;
      min_v = t.min_v;
      max_v = t.max_v;
    }

  let clear t =
    Array.fill t.cells 0 (Array.length t.cells) 0;
    t.count <- 0;
    t.sum <- 0;
    t.min_v <- max_int;
    t.max_v <- min_int
end
