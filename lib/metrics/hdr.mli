(** Log-bucketed HDR-style histogram buckets: bounded relative error,
    constant memory, O(1) record, mergeable snapshots.

    With [sub_bits = s] every power-of-two range is split into [2^s]
    sub-buckets, so a recorded value [v] lands in a bucket whose width
    is at most [v / 2^s]: any quantile estimated from bucket midpoints
    is within relative error [2^-s] of the exact rank statistic (and
    values below [2^s] are exact, bucket width 1).  Memory is fixed at
    [(63 - s) * 2^s] buckets regardless of range. *)

val default_sub_bits : int
(** 5: at most 3.125% relative error, 1856 buckets. *)

val nbuckets : sub_bits:int -> int

val index_of : sub_bits:int -> int -> int
(** Bucket index for a value; negative values clamp to bucket 0. *)

val lower_bound : sub_bits:int -> int -> int
(** Smallest value mapping to the bucket. *)

val upper_bound : sub_bits:int -> int -> int
(** Largest value mapping to the bucket. *)

val midpoint : sub_bits:int -> int -> float
(** Representative value of the bucket (midpoint of its range). *)

(** Plain-data, Marshal-safe summary of a histogram: sparse
    [(index, count)] pairs in ascending index order plus the exact
    count / sum / min / max of recorded values. *)
type snapshot = {
  sub_bits : int;
  buckets : (int * int) list;
  count : int;
  sum : int;
  min_v : int;  (** [max_int] when empty *)
  max_v : int;  (** [min_int] when empty *)
}

val empty : ?sub_bits:int -> unit -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Bucket-wise sum.  Associative and commutative; merging the
    snapshots of two shards equals the snapshot of the merged value
    streams.  @raise Invalid_argument on mismatched [sub_bits]. *)

val quantile : snapshot -> float -> float
(** [quantile s q] estimates the [q]-quantile ([0. <= q <= 1.]) as the
    midpoint of the bucket holding the rank-[ceil (q * count)] value;
    relative error is bounded by [2^-sub_bits].  [0.] when empty. *)

val mean : snapshot -> float
val to_json : snapshot -> Repro_util.Json_out.t

val of_json : Repro_util.Json_out.t -> snapshot
(** @raise Invalid_argument on malformed input. *)

(** Dense single-writer histogram for tests and benchmarks (the
    registry's per-domain shards live in {!Metrics}). *)
module Local : sig
  type t

  val create : ?sub_bits:int -> unit -> t
  val observe : t -> int -> unit
  val snapshot : t -> snapshot
  val clear : t -> unit
end
