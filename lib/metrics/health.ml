type config = {
  steal_min_attempts : float;
  steal_fail_ratio : float;
  steal_attempts_per_park : float;
  fizzle_min_created : float;
  fizzle_ratio : float;
  backpressure_min_waits : float;
  backpressure_per_msg : float;
  gc_min_elapsed_s : float;
  gc_minor_per_sec : float;
  gc_major_per_sec : float;
}

(* Thresholds are deliberately generous: detectors flag pathological
   regimes (a storm, a stall), not the high-but-healthy contention any
   small --quick run exhibits. *)
let default_config =
  {
    steal_min_attempts = 5_000.;
    steal_fail_ratio = 0.98;
    steal_attempts_per_park = 512.;
    fizzle_min_created = 1_024.;
    fizzle_ratio = 0.95;
    backpressure_min_waits = 512.;
    backpressure_per_msg = 4.;
    gc_min_elapsed_s = 0.05;
    gc_minor_per_sec = 200_000.;
    gc_major_per_sec = 2_000.;
  }

type verdict = { rule : string; triggered : bool; detail : string }

let ratio num den = if den <= 0. then 0. else num /. den

let steal_storm cfg snap =
  let attempts = Metrics.total snap "repro_steal_attempts_total" in
  let steals = Metrics.total snap "repro_steals_total" in
  let parks = Metrics.total snap "repro_pool_parks_total" in
  let fail = ratio (attempts -. steals) attempts in
  let per_park = ratio attempts (Float.max 1. parks) in
  {
    rule = "steal-failure-storm";
    triggered =
      attempts >= cfg.steal_min_attempts
      && fail > cfg.steal_fail_ratio
      && per_park > cfg.steal_attempts_per_park;
    detail =
      Printf.sprintf "%.0f attempts, %.1f%% failed, %.0f attempts/park" attempts
        (100. *. fail) per_park;
  }

let spark_fizzle cfg snap =
  let created = Metrics.total snap "repro_pool_sparks_created_total" in
  let fizzled = Metrics.total snap "repro_pool_sparks_fizzled_total" in
  let r = ratio fizzled created in
  {
    rule = "spark-fizzle-ratio";
    triggered = created >= cfg.fizzle_min_created && r > cfg.fizzle_ratio;
    detail = Printf.sprintf "%.0f created, %.0f fizzled (%.1f%%)" created fizzled (100. *. r);
  }

let backpressure_stall cfg snap =
  let waits = Metrics.total snap "repro_ring_backpressure_waits_total" in
  let msgs = Metrics.total snap "repro_wire_msgs_sent_total" in
  let per_msg = ratio waits (Float.max 1. msgs) in
  {
    rule = "ring-backpressure-stall";
    triggered = waits >= cfg.backpressure_min_waits && per_msg > cfg.backpressure_per_msg;
    detail = Printf.sprintf "%.0f full-ring waits over %.0f sent msgs (%.1f/msg)" waits msgs per_msg;
  }

let gc_pressure cfg snap =
  let secs = float_of_int snap.Metrics.elapsed_ns /. 1e9 in
  let minor = Metrics.total snap "repro_gc_minor_collections" in
  let major = Metrics.total snap "repro_gc_major_collections" in
  let minor_rate = ratio minor secs and major_rate = ratio major secs in
  {
    rule = "gc-pause-budget";
    triggered =
      secs >= cfg.gc_min_elapsed_s
      && (minor_rate > cfg.gc_minor_per_sec || major_rate > cfg.gc_major_per_sec);
    detail =
      Printf.sprintf "%.0f minor/s, %.1f major/s over %.2fs (budget %.0f, %.0f)" minor_rate
        major_rate secs cfg.gc_minor_per_sec cfg.gc_major_per_sec;
  }

(* Fibers still live at snapshot time: a collector snapshotted after
   the workload drained (the CLI's --strict-health path) should see the
   live gauge back at zero — anything left is a parked fiber whose
   wakeup never came, i.e. a leak.  The gauge is a float total over
   collectors; > 0.5 is "at least one" without trusting float
   equality. *)
let fiber_leak _cfg snap =
  let spawned = Metrics.total snap "repro_fiber_spawned_total" in
  let live = Metrics.total snap "repro_fiber_live" in
  {
    rule = "fiber-leak";
    triggered = spawned > 0. && live > 0.5;
    detail =
      Printf.sprintf "%.0f fibers still live of %.0f spawned" live spawned;
  }

let evaluate ?(config = default_config) snap =
  [
    steal_storm config snap;
    spark_fizzle config snap;
    backpressure_stall config snap;
    gc_pressure config snap;
    fiber_leak config snap;
  ]

let pp fmt verdicts =
  List.iter
    (fun v ->
      Format.fprintf fmt "health: %-4s %-24s (%s)@."
        (if v.triggered then "FAIL" else "OK")
        v.rule v.detail)
    verdicts

let exit_code verdicts = if List.exists (fun v -> v.triggered) verdicts then 3 else 0
