(** Health detectors: a rule pass over a (possibly farm-merged)
    {!Metrics.snapshot} that turns raw counters into shutdown verdicts
    — steal-failure storms, spark fizzle ratio, ring backpressure
    stalls, GC pressure over budget, fibers still live after the
    workload drained (a parked fiber whose wakeup never came). *)

type config = {
  steal_min_attempts : float;
      (** ignore runs with fewer steal attempts than this *)
  steal_fail_ratio : float;  (** failed/attempted above this is a storm… *)
  steal_attempts_per_park : float;
      (** …but only when attempts outrun parks by this factor
          (parking workers are famished, not storming) *)
  fizzle_min_created : float;
  fizzle_ratio : float;  (** fizzled/created above this *)
  backpressure_min_waits : float;
  backpressure_per_msg : float;  (** waits per sent message above this *)
  gc_min_elapsed_s : float;  (** rates are meaningless on shorter runs *)
  gc_minor_per_sec : float;
  gc_major_per_sec : float;
}

val default_config : config

type verdict = { rule : string; triggered : bool; detail : string }

val evaluate : ?config:config -> Metrics.snapshot -> verdict list
(** One verdict per rule, in a fixed order. *)

val pp : Format.formatter -> verdict list -> unit
(** One [health: OK|FAIL rule (detail)] line per verdict. *)

val exit_code : verdict list -> int
(** 0 when nothing triggered, 3 otherwise (for [--strict-health]). *)
