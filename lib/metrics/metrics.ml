module A = Repro_shim.Tatomic.Real
module Json = Repro_util.Json_out
module Json_in = Repro_util.Json_in

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* ---------------- instruments ---------------- *)

type counter = { c_enabled : bool A.t; c_mask : int; c_cells : int A.t array }
type gauge = { g_cell : float A.t }

type hshard = {
  hs_cells : int A.t array;
  hs_sum : int A.t;
  hs_min : int A.t;
  hs_max : int A.t;
}

type histogram = {
  h_enabled : bool A.t;
  h_sub_bits : int;
  h_mask : int;
  h_shards : hshard option A.t array;
}

let shard_index mask = (Domain.self () :> int) land mask

let incr c =
  if A.get c.c_enabled then
    ignore (A.fetch_and_add c.c_cells.(shard_index c.c_mask) 1)

let add c n =
  if A.get c.c_enabled then
    ignore (A.fetch_and_add c.c_cells.(shard_index c.c_mask) n)

let set_gauge g v = A.set g.g_cell v

let fresh_hshard ~sub_bits =
  {
    hs_cells = Array.init (Hdr.nbuckets ~sub_bits) (fun _ -> A.make 0);
    hs_sum = A.make 0;
    hs_min = A.make max_int;
    hs_max = A.make min_int;
  }

let rec hshard h i =
  match A.get h.h_shards.(i) with
  | Some s -> s
  | None ->
      (* Lazy install, CASed exactly once per shard: histograms are
         sized in kilobytes, so unused shards stay unallocated. *)
      let s = fresh_hshard ~sub_bits:h.h_sub_bits in
      if A.compare_and_set h.h_shards.(i) None (Some s) then s else hshard h i

(* Monotone min/max: the CAS loop runs only while the extreme is still
   moving, i.e. a handful of times after startup — the steady-state
   path is one load and an untaken branch. *)
let rec update_min cell v =
  let cur = A.get cell in
  if v < cur && not (A.compare_and_set cell cur v) then update_min cell v

let rec update_max cell v =
  let cur = A.get cell in
  if v > cur && not (A.compare_and_set cell cur v) then update_max cell v

let observe h v =
  if A.get h.h_enabled then begin
    let v = if v < 0 then 0 else v in
    let s = hshard h (shard_index h.h_mask) in
    (* the count is not tracked separately: it is recovered at snapshot
       time by summing the cells, saving one XADD per record *)
    ignore (A.fetch_and_add s.hs_cells.(Hdr.index_of ~sub_bits:h.h_sub_bits v) 1);
    ignore (A.fetch_and_add s.hs_sum v);
    update_min s.hs_min v;
    update_max s.hs_max v
  end

(* ---------------- samples ---------------- *)

type value = Counter of float | Gauge of float | Hist of Hdr.snapshot

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_value : value;
}

type snapshot = { taken_ns : int; elapsed_ns : int; samples : sample list }

let canon_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let c_sample ?(help = "") ?(labels = []) name v =
  { s_name = name; s_labels = canon_labels labels; s_help = help; s_value = Counter v }

let g_sample ?(help = "") ?(labels = []) name v =
  { s_name = name; s_labels = canon_labels labels; s_help = help; s_value = Gauge v }

let h_sample ?(help = "") ?(labels = []) name h =
  { s_name = name; s_labels = canon_labels labels; s_help = help; s_value = Hist h }

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x +. y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Hist x, Hist y -> Hist (Hdr.merge x y)
  | _ -> invalid_arg ("Metrics.merge: kind mismatch for " ^ name)

let merge_sample a b =
  {
    a with
    s_help = (if a.s_help <> "" then a.s_help else b.s_help);
    s_value = merge_value a.s_name a.s_value b.s_value;
  }

(* Combine duplicate (name, labels) keys, preserving first-appearance
   order — this is what makes live + collected + retired samples (and
   per-PE snapshots) composable with plain list append. *)
let canon_samples samples =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun s ->
      let key = (s.s_name, s.s_labels) in
      match Hashtbl.find_opt tbl key with
      | None ->
          Hashtbl.add tbl key s;
          order := key :: !order
      | Some prev -> Hashtbl.replace tbl key (merge_sample prev s))
    samples;
  List.rev_map (fun k -> Hashtbl.find tbl k) !order

(* ---------------- registry ---------------- *)

type ekind = E_counter of counter | E_gauge of gauge | E_hist of histogram

type entry = {
  e_name : string;
  e_labels : (string * string) list;
  e_help : string;
  e_kind : ekind;
}

type t = {
  r_enabled : bool A.t;
  r_nshards : int;
  r_lock : Mutex.t;
  mutable r_entries : entry list;  (** newest first *)
  mutable r_collectors : (int * string * (unit -> sample list)) list;
  mutable r_retired : sample list;
  mutable r_next : int;
  r_created_ns : int;
}

let create ?(enabled = true) ?nshards () =
  let n =
    match nshards with
    | Some n -> max 1 n
    | None -> Domain.recommended_domain_count ()
  in
  let nshards = min 64 (next_pow2 n) in
  {
    r_enabled = A.make enabled;
    r_nshards = nshards;
    r_lock = Mutex.create ();
    r_entries = [];
    r_collectors = [];
    r_retired = [];
    r_next = 0;
    r_created_ns = now_ns ();
  }

let default = create ()
let set_enabled r v = A.set r.r_enabled v
let enabled r = A.get r.r_enabled

let locked r f =
  Mutex.lock r.r_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.r_lock) f

let register ~registry:r ~help ~labels ~name ~describe ~fresh ~extract =
  let labels = canon_labels labels in
  locked r (fun () ->
      match
        List.find_opt (fun e -> e.e_name = name && e.e_labels = labels) r.r_entries
      with
      | Some e -> (
          match extract e.e_kind with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %s already registered as another kind (%s)"
                   name describe))
      | None ->
          let v, kind = fresh () in
          r.r_entries <- { e_name = name; e_labels = labels; e_help = help; e_kind = kind } :: r.r_entries;
          v)

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  register ~registry ~help ~labels ~name ~describe:"counter"
    ~fresh:(fun () ->
      let c =
        {
          c_enabled = registry.r_enabled;
          c_mask = registry.r_nshards - 1;
          c_cells = Array.init registry.r_nshards (fun _ -> A.make 0);
        }
      in
      (c, E_counter c))
    ~extract:(function E_counter c -> Some c | _ -> None)

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  register ~registry ~help ~labels ~name ~describe:"gauge"
    ~fresh:(fun () ->
      let g = { g_cell = A.make 0. } in
      (g, E_gauge g))
    ~extract:(function E_gauge g -> Some g | _ -> None)

let histogram ?(registry = default) ?(help = "") ?(labels = [])
    ?(sub_bits = Hdr.default_sub_bits) name =
  register ~registry ~help ~labels ~name ~describe:"histogram"
    ~fresh:(fun () ->
      let h =
        {
          h_enabled = registry.r_enabled;
          h_sub_bits = sub_bits;
          h_mask = registry.r_nshards - 1;
          h_shards = Array.init registry.r_nshards (fun _ -> A.make None);
        }
      in
      (h, E_hist h))
    ~extract:(function E_hist h -> Some h | _ -> None)

type collector = int

let add_collector ?(registry = default) ~name fn =
  locked registry (fun () ->
      let id = registry.r_next in
      registry.r_next <- id + 1;
      registry.r_collectors <- (id, name, fn) :: registry.r_collectors;
      id)

let next_id ?(registry = default) () =
  locked registry (fun () ->
      let id = registry.r_next in
      registry.r_next <- id + 1;
      id)

let run_collector fn = try fn () with _ -> []

let remove_collector ?(registry = default) id =
  let found =
    locked registry (fun () ->
        let found = List.find_opt (fun (i, _, _) -> i = id) registry.r_collectors in
        registry.r_collectors <-
          List.filter (fun (i, _, _) -> i <> id) registry.r_collectors;
        found)
  in
  match found with
  | None -> ()
  | Some (_, _, fn) ->
      (* Final poll outside the lock (user code), retire inside it. *)
      let samples = run_collector fn in
      locked registry (fun () ->
          registry.r_retired <- canon_samples (registry.r_retired @ samples))

(* ---------------- snapshots ---------------- *)

let hshard_snapshot ~sub_bits s =
  (* Reads race benignly with concurrent observes: each cell is
     atomic, the aggregate is a monitoring-grade approximation. *)
  let buckets = ref [] and count = ref 0 in
  for i = Array.length s.hs_cells - 1 downto 0 do
    let n = A.get s.hs_cells.(i) in
    if n <> 0 then begin
      buckets := (i, n) :: !buckets;
      count := !count + n
    end
  done;
  {
    Hdr.sub_bits;
    buckets = !buckets;
    count = !count;
    sum = A.get s.hs_sum;
    min_v = A.get s.hs_min;
    max_v = A.get s.hs_max;
  }

let sample_of_entry e =
  let value =
    match e.e_kind with
    | E_counter c ->
        Counter (float_of_int (Array.fold_left (fun acc a -> acc + A.get a) 0 c.c_cells))
    | E_gauge g -> Gauge (A.get g.g_cell)
    | E_hist h ->
        Hist
          (Array.fold_left
             (fun acc cell ->
               match A.get cell with
               | None -> acc
               | Some s -> Hdr.merge acc (hshard_snapshot ~sub_bits:h.h_sub_bits s))
             (Hdr.empty ~sub_bits:h.h_sub_bits ())
             h.h_shards)
  in
  { s_name = e.e_name; s_labels = e.e_labels; s_help = e.e_help; s_value = value }

let snapshot ?(registry = default) () =
  let entries, collectors, retired =
    locked registry (fun () ->
        (registry.r_entries, registry.r_collectors, registry.r_retired))
  in
  let now = now_ns () in
  let live = List.rev_map sample_of_entry entries in
  let collected =
    List.concat_map (fun (_, _, fn) -> run_collector fn) (List.rev collectors)
  in
  {
    taken_ns = now;
    elapsed_ns = now - registry.r_created_ns;
    samples = canon_samples (live @ collected @ retired);
  }

let merge a b =
  {
    taken_ns = max a.taken_ns b.taken_ns;
    elapsed_ns = max a.elapsed_ns b.elapsed_ns;
    samples = canon_samples (a.samples @ b.samples);
  }

let relabel (k, v) snap =
  {
    snap with
    samples =
      List.map
        (fun s -> { s with s_labels = canon_labels ((k, v) :: List.remove_assoc k s.s_labels) })
        snap.samples;
  }

let find ?labels snap name =
  match labels with
  | None -> List.find_opt (fun s -> s.s_name = name) snap.samples
  | Some labels ->
      let labels = canon_labels labels in
      List.find_opt (fun s -> s.s_name = name && s.s_labels = labels) snap.samples

let total snap name =
  List.fold_left
    (fun acc s ->
      if s.s_name <> name then acc
      else match s.s_value with Counter v | Gauge v -> acc +. v | Hist _ -> acc)
    0. snap.samples

let hist_total snap name =
  List.fold_left
    (fun acc s ->
      match (s.s_name = name, s.s_value) with
      | true, Hist h -> ( match acc with None -> Some h | Some a -> Some (Hdr.merge a h))
      | _ -> acc)
    None snap.samples
  |> Option.value ~default:(Hdr.empty ())

(* ---------------- JSON ---------------- *)

let sample_to_json s =
  let kind, value =
    match s.s_value with
    | Counter v -> ("counter", Json.Float v)
    | Gauge v -> ("gauge", Json.Float v)
    | Hist h -> ("histogram", Hdr.to_json h)
  in
  Json.Obj
    [
      ("name", Json.Str s.s_name);
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.s_labels));
      ("help", Json.Str s.s_help);
      ("kind", Json.Str kind);
      ("value", value);
    ]

let snapshot_to_json snap =
  Json.Obj
    [
      ("taken_ns", Json.Int snap.taken_ns);
      ("elapsed_ns", Json.Int snap.elapsed_ns);
      ("samples", Json.List (List.map sample_to_json snap.samples));
    ]

let bad msg = invalid_arg ("Metrics.snapshot_of_json: " ^ msg)

let sample_of_json j =
  let str key =
    match Option.bind (Json_in.member key j) Json_in.to_string with
    | Some s -> s
    | None -> bad ("missing string field " ^ key)
  in
  let labels =
    match Json_in.member "labels" j with
    | Some (Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match Json_in.to_string v with Some v -> (k, v) | None -> bad "label value")
          kvs
    | _ -> bad "missing labels"
  in
  let value_json =
    match Json_in.member "value" j with Some v -> v | None -> bad "missing value"
  in
  let value =
    match str "kind" with
    | "counter" -> (
        match Json_in.to_float value_json with
        | Some v -> Counter v
        | None -> bad "counter value")
    | "gauge" -> (
        match Json_in.to_float value_json with
        | Some v -> Gauge v
        | None -> bad "gauge value")
    | "histogram" -> Hist (Hdr.of_json value_json)
    | k -> bad ("unknown kind " ^ k)
  in
  { s_name = str "name"; s_labels = canon_labels labels; s_help = str "help"; s_value = value }

let snapshot_of_json j =
  let geti key =
    match Option.bind (Json_in.member key j) Json_in.to_int with
    | Some v -> v
    | None -> bad ("missing int field " ^ key)
  in
  let samples =
    match Option.bind (Json_in.member "samples" j) Json_in.to_list with
    | Some l -> List.map sample_of_json l
    | None -> bad "missing samples"
  in
  { taken_ns = geti "taken_ns"; elapsed_ns = geti "elapsed_ns"; samples }

(* ---------------- default-registry GC collector ---------------- *)

let () =
  ignore
    (add_collector ~registry:default ~name:"gc" (fun () ->
         let st = Gc.quick_stat () in
         [
           g_sample "repro_gc_minor_collections"
             ~help:"Minor GC collections since process start"
             (float_of_int st.Gc.minor_collections);
           g_sample "repro_gc_major_collections"
             ~help:"Major GC collections since process start"
             (float_of_int st.Gc.major_collections);
           g_sample "repro_gc_compactions" ~help:"Heap compactions"
             (float_of_int st.Gc.compactions);
           g_sample "repro_gc_minor_words" ~help:"Words allocated in the minor heap"
             (Gc.minor_words ());
           g_sample "repro_gc_promoted_words" ~help:"Words promoted to the major heap"
             st.Gc.promoted_words;
           g_sample "repro_gc_heap_words" ~help:"Major heap size in words"
             (float_of_int st.Gc.heap_words);
         ]))
