(** Lock-free metrics registry: per-domain sharded counters, gauges and
    {!Hdr} histograms, plus pull-mode collectors bridging existing
    per-instance tallies (pool worker counters, wire link counters, GC
    stats) into snapshots.

    Hot-path design: a disabled metric costs one atomic load and one
    branch; an enabled counter increment is one atomic load plus one
    [fetch_and_add] on a per-domain shard (hardware XADD — no CAS loop,
    no allocation).  Snapshots are plain data: Marshal-safe, mergeable
    across shards, registries and processes, and relabelable so a
    coordinator can merge per-PE snapshots into one farm-wide view. *)

type t
(** A registry. *)

val create : ?enabled:bool -> ?nshards:int -> unit -> t
(** [nshards] rounds up to a power of two, default derived from
    [Domain.recommended_domain_count], clamped to 64. *)

val default : t
(** Process-wide registry; has a GC collector pre-registered
    ([repro_gc_*] gauges from [Gc.quick_stat]).  Enabled by default. *)

val set_enabled : t -> bool -> unit
(** Flips every metric handed out by this registry (shared flag). *)

val enabled : t -> bool

(** {2 Instruments} *)

type counter

val counter :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Registers (or finds — registration is idempotent by name + label
    set) a monotone counter.  By convention names end in [_total].
    @raise Invalid_argument if the name is registered with another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit

type gauge

val gauge :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> float -> unit

type histogram

val histogram :
  ?registry:t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?sub_bits:int ->
  string ->
  histogram

val observe : histogram -> int -> unit
(** Records a non-negative integer observation (negatives clamp to 0). *)

(** {2 Snapshots} *)

type value = Counter of float | Gauge of float | Hist of Hdr.snapshot

type sample = {
  s_name : string;
  s_labels : (string * string) list;  (** sorted by key *)
  s_help : string;
  s_value : value;
}

type snapshot = {
  taken_ns : int;  (** monotonic clock at snapshot time *)
  elapsed_ns : int;  (** since the registry was created *)
  samples : sample list;
}

val c_sample : ?help:string -> ?labels:(string * string) list -> string -> float -> sample
(** Sample constructors for collector callbacks. *)

val g_sample : ?help:string -> ?labels:(string * string) list -> string -> float -> sample

val h_sample :
  ?help:string -> ?labels:(string * string) list -> string -> Hdr.snapshot -> sample

val snapshot : ?registry:t -> unit -> snapshot
(** Live instruments, collector callbacks and retired samples, merged
    into one canonical sample list (duplicate name + label keys are
    combined: counters and gauges add, histograms bucket-merge). *)

val merge : snapshot -> snapshot -> snapshot
(** Associative, commutative combination by (name, labels) key.
    @raise Invalid_argument when a key is bound to different kinds. *)

val relabel : string * string -> snapshot -> snapshot
(** [relabel (k, v) s] adds (or overrides) label [k] on every sample —
    e.g. [("pe", "3")] before merging a worker snapshot into the
    coordinator's view. *)

val find : ?labels:(string * string) list -> snapshot -> string -> sample option
(** Exact name + label-set lookup. *)

val total : snapshot -> string -> float
(** Sum of all counter/gauge samples with this name, across label sets
    (histogram samples contribute nothing). *)

val hist_total : snapshot -> string -> Hdr.snapshot
(** Merge of all histogram samples with this name. *)

val snapshot_to_json : snapshot -> Repro_util.Json_out.t

val snapshot_of_json : Repro_util.Json_out.t -> snapshot
(** @raise Invalid_argument on malformed input. *)

(** {2 Collectors} *)

type collector

val add_collector : ?registry:t -> name:string -> (unit -> sample list) -> collector
(** Registers a callback polled at snapshot time.  Exceptions from the
    callback are swallowed (it contributes no samples). *)

val remove_collector : ?registry:t -> collector -> unit
(** Polls the callback one final time and folds its samples into the
    registry's retired set, so cumulative totals survive the lifecycle
    of the object that owned them (a shut-down pool, a closed link). *)

val next_id : ?registry:t -> unit -> int
(** Small unique ids, e.g. for per-link labels. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds. *)
