module A = Repro_shim.Tatomic.Real

type t = {
  registry : Metrics.t;
  interval_s : float;
  stop_flag : bool A.t;
  lock : Mutex.t;
  mutable snaps : Metrics.snapshot list;  (** newest first *)
  on_sample : Metrics.snapshot list -> unit;
  mutable dom : unit Domain.t option;
}

let push t s =
  Mutex.lock t.lock;
  t.snaps <- s :: t.snaps;
  let series = List.rev t.snaps in
  Mutex.unlock t.lock;
  try t.on_sample series with _ -> ()

let start ?(registry = Metrics.default) ?(interval_ms = 200) ?(on_sample = fun _ -> ()) () =
  let t =
    {
      registry;
      interval_s = float_of_int (max 1 interval_ms) /. 1000.;
      stop_flag = A.make false;
      lock = Mutex.create ();
      snaps = [];
      on_sample;
      dom = None;
    }
  in
  let rec loop () =
    if not (A.get t.stop_flag) then begin
      Unix.sleepf t.interval_s;
      (* The final snapshot is taken by [stop] itself, after the join,
         so a tick racing the stop flag is simply skipped. *)
      if not (A.get t.stop_flag) then begin
        push t (Metrics.snapshot ~registry ());
        loop ()
      end
    end
  in
  t.dom <- Some (Domain.spawn loop);
  t

let stop t =
  A.set t.stop_flag true;
  (match t.dom with
  | None -> ()
  | Some d ->
      Domain.join d;
      t.dom <- None;
      push t (Metrics.snapshot ~registry:t.registry ()));
  Mutex.lock t.lock;
  let series = List.rev t.snaps in
  Mutex.unlock t.lock;
  series
