(** Periodic snapshot loop on a dedicated observer domain, feeding the
    [--metrics FILE] time series and the [repro_cli top] live view. *)

type t

val start :
  ?registry:Metrics.t ->
  ?interval_ms:int ->
  ?on_sample:(Metrics.snapshot list -> unit) ->
  unit ->
  t
(** Spawns a domain that snapshots [registry] every [interval_ms]
    (default 200).  [on_sample] is called from the observer domain
    after each tick with the series so far, oldest first — the CLI
    uses it to rewrite the series file so [top] can follow live. *)

val stop : t -> Metrics.snapshot list
(** Stops and joins the observer domain, takes one final snapshot and
    returns the full series, oldest first.  Idempotent. *)
