(** Message-passing middleware cost profiles.

    The paper's distributed-heap implementations (Sec. III-B) sit on a
    message-passing layer "designed to allow plug-in replacement of
    different message-passing libraries" — typically PVM or MPI, with
    shared-memory implementations used on multicores.  A transport here
    is purely a cost profile: the runtime simulator charges these costs
    when PEs exchange messages.

    Costs are split into:
    - [pack_ns_per_byte]: serialisation of the subgraph into packets,
      charged to the {e sending thread} as mutator work;
    - [latency_ns]: per-message end-to-end latency through the
      middleware (on a multicore this is the cost of the middleware
      stack, not a network);
    - [wire_ns_per_byte]: per-byte transfer cost;
    - [unpack_ns_per_byte]: deserialisation charged on the receiver.

    The numbers model shared-memory operation (processes on one
    machine); PVM has a noticeably heavier per-message path than MPI,
    and the idealised [shm] transport models a hand-written
    shared-memory middleware. *)

type t = {
  name : string;
  latency_ns : int;
  per_message_ns : int;  (** fixed send-side overhead *)
  wire_ns_per_byte : float;
  pack_ns_per_byte : float;
  unpack_ns_per_byte : float;
  packet_bytes : int;  (** messages are split into packets of this size *)
}

let pvm =
  {
    name = "pvm";
    latency_ns = 25_000;
    per_message_ns = 6_000;
    wire_ns_per_byte = 0.45;
    pack_ns_per_byte = 0.55;
    unpack_ns_per_byte = 0.45;
    packet_bytes = 32 * 1024;
  }

let mpi =
  {
    name = "mpi";
    latency_ns = 9_000;
    per_message_ns = 2_500;
    wire_ns_per_byte = 0.30;
    pack_ns_per_byte = 0.55;
    unpack_ns_per_byte = 0.45;
    packet_bytes = 64 * 1024;
  }

(* Idealised custom shared-memory middleware. *)
let shm =
  {
    name = "shm";
    latency_ns = 1_500;
    per_message_ns = 600;
    wire_ns_per_byte = 0.12;
    pack_ns_per_byte = 0.50;
    unpack_ns_per_byte = 0.40;
    packet_bytes = 64 * 1024;
  }

(* A profile built from constants measured on the host (the bench
   harness's socketpair round-trip + Marshal micro-benchmark) instead
   of the paper's modelled middleware numbers.  Not part of [all]: it
   only exists once someone has measured. *)
let measured ?(name = "measured") ~latency_ns ~per_message_ns ~wire_ns_per_byte
    ~pack_ns_per_byte ~unpack_ns_per_byte ~packet_bytes () =
  if latency_ns < 0 || per_message_ns < 0 then
    invalid_arg "Transport.measured: negative per-message cost";
  if
    wire_ns_per_byte < 0.0 || pack_ns_per_byte < 0.0
    || unpack_ns_per_byte < 0.0
  then invalid_arg "Transport.measured: negative per-byte cost";
  if packet_bytes < 1 then
    invalid_arg "Transport.measured: packet_bytes must be >= 1";
  {
    name;
    latency_ns;
    per_message_ns;
    wire_ns_per_byte;
    pack_ns_per_byte;
    unpack_ns_per_byte;
    packet_bytes;
  }

let all = [ pvm; mpi; shm ]

let by_name name =
  match List.find_opt (fun t -> t.name = name) all with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Transport.by_name: unknown %S" name)

(* Number of packets a [bytes]-sized payload needs. *)
let packets t bytes = max 1 ((bytes + t.packet_bytes - 1) / t.packet_bytes)

(* Send-side cost in cycles-free nanoseconds (charged as virtual time
   to the sending thread): packing plus per-packet overheads. *)
let send_side_ns t bytes =
  let pk = packets t bytes in
  (pk * t.per_message_ns)
  + int_of_float (t.pack_ns_per_byte *. float_of_int bytes)

(* In-flight delay between send completion and delivery. *)
let flight_ns t bytes =
  t.latency_ns + int_of_float (t.wire_ns_per_byte *. float_of_int bytes)

(* Receive-side cost charged to the receiving PE on delivery. *)
let recv_side_ns t bytes =
  int_of_float (t.unpack_ns_per_byte *. float_of_int bytes)

let pp ppf t = Format.pp_print_string ppf t.name
