(** Message-passing middleware cost profiles (paper Sec. III-B): the
    distributed-heap runtimes sit on pluggable middleware — typically
    PVM or MPI, mapped onto shared memory on a multicore.  A transport
    is purely a cost profile charged by the runtime simulator when PEs
    exchange messages. *)

type t = {
  name : string;
  latency_ns : int;  (** per-message end-to-end middleware latency *)
  per_message_ns : int;  (** fixed send-side overhead per packet *)
  wire_ns_per_byte : float;
  pack_ns_per_byte : float;  (** serialisation, charged to the sender *)
  unpack_ns_per_byte : float;  (** deserialisation, on the receiver *)
  packet_bytes : int;  (** messages are split into packets *)
}

(** PVM: the heaviest per-message path (the paper's Eden runs). *)
val pvm : t

(** MPI: lighter-weight than PVM. *)
val mpi : t

(** Idealised custom shared-memory middleware. *)
val shm : t

(** A profile from constants measured on the host (see the bench
    harness's [--transport] mode: socketpair round-trips + Marshal
    throughput).  Not in {!all} and not resolvable by {!by_name}.
    @raise Invalid_argument on negative costs or [packet_bytes < 1]. *)
val measured :
  ?name:string ->
  latency_ns:int ->
  per_message_ns:int ->
  wire_ns_per_byte:float ->
  pack_ns_per_byte:float ->
  unpack_ns_per_byte:float ->
  packet_bytes:int ->
  unit ->
  t

val all : t list

(** @raise Invalid_argument for unknown names. *)
val by_name : string -> t

(** Packets needed for a payload (at least 1). *)
val packets : t -> int -> int

(** Send-side cost (packing + per-packet overheads), ns. *)
val send_side_ns : t -> int -> int

(** In-flight delay between send completion and delivery, ns. *)
val flight_ns : t -> int -> int

(** Receive-side unpack cost, ns. *)
val recv_side_ns : t -> int -> int

val pp : Format.formatter -> t -> unit
