(** The atomics shim every concurrent module in this repo is written
    against ([TRACED_ATOMIC] in the issue tracker's terms).

    Two implementations exist:

    - {!Real}, below: a module {e alias} of [Stdlib.Atomic].  Because it
      is an alias (not a sealed coercion), callers still see the
      compiler primitives ([%atomic_load] etc.) and compile to exactly
      the same machine code as writing [Atomic.get] directly — the
      production path costs nothing.
    - [Repro_check.Sched.Atomic]: a checking implementation that records
      every load/store/CAS/fetch-and-add with its simulated thread id
      and location, and yields to a DPOR model-checking scheduler at
      every operation.

    [Ws_deque], [Future] and [Pool] are functors over this signature;
    their default instances are [Make (Tatomic.Real)].  The [@lint]
    alias (see [tools/lint_atomics.ml]) rejects raw [Atomic.] usage
    anywhere else in library code, so every atomic the executor
    performs is checkable by [lib/check]. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a

  (** Physical-equality compare-and-set, like [Stdlib.Atomic]. *)
  val compare_and_set : 'a t -> 'a -> 'a -> bool

  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

(** Production implementation: a zero-cost module alias. *)
module Real = Stdlib.Atomic

(* Compile-time check that the alias satisfies the signature without
   sealing it (sealing would hide the primitives). *)
module _ : S = Real

(** A single shared control word, the second shim signature: where {!S}
    abstracts {e intra-process} atomics (OCaml values, CAS), [WORD]
    abstracts a plain machine word that two parties hand values
    through — the head/tail/sleeping words of the shared-memory ring
    transport ([Repro_dist.Shm_ring]), which live in an [mmap]'d file
    and are read and written by {e different processes}.

    Only load and store exist: a correct SPSC ring never needs
    read-modify-write on its cursors (each word has exactly one
    writer).  Two implementations:

    - [Repro_dist.Shm_ring.Mapped_word]: an 8-byte-aligned slot of the
      mapped segment (a [Bigarray] int64 element — aligned word loads
      and stores, which are single instructions on every 64-bit
      target).
    - [Repro_check.Sched.Atomic]-backed cells: the model checker
      instantiates the very same ring protocol functor with traced
      cells, so DPOR explores the production claim/publish/consume
      ordering (see [Repro_check.Protocols]'s spsc-ring configs). *)
module type WORD = sig
  type t

  val load : t -> int
  val store : t -> int -> unit
end

(** Full memory barrier for the Dekker-style sleeper handshake of the
    ring doorbell (consumer: store [sleeping]=1 {e then} load [tail];
    producer: store [tail] {e then} load [sleeping]).  Plain mapped
    stores and loads may be reordered across each other (StoreLoad) by
    both the hardware and the compiler; an [Atomic.exchange] on a
    process-local cell is a compiler barrier in the OCaml memory model
    and compiles to a locked instruction (a full fence) on x86-64 and
    to ldaxr/stlxr pairs on AArch64.  Each ring side owns its own cell
    so fences never contend across domains. *)
module Fence = struct
  type t = int Real.t

  let create () : t = Real.make 0
  let full (t : t) = ignore (Real.exchange t 0)
end
