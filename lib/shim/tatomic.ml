(** The atomics shim every concurrent module in this repo is written
    against ([TRACED_ATOMIC] in the issue tracker's terms).

    Two implementations exist:

    - {!Real}, below: a module {e alias} of [Stdlib.Atomic].  Because it
      is an alias (not a sealed coercion), callers still see the
      compiler primitives ([%atomic_load] etc.) and compile to exactly
      the same machine code as writing [Atomic.get] directly — the
      production path costs nothing.
    - [Repro_check.Sched.Atomic]: a checking implementation that records
      every load/store/CAS/fetch-and-add with its simulated thread id
      and location, and yields to a DPOR model-checking scheduler at
      every operation.

    [Ws_deque], [Future] and [Pool] are functors over this signature;
    their default instances are [Make (Tatomic.Real)].  The [@lint]
    alias (see [tools/lint_atomics.ml]) rejects raw [Atomic.] usage
    anywhere else in library code, so every atomic the executor
    performs is checkable by [lib/check]. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a

  (** Physical-equality compare-and-set, like [Stdlib.Atomic]. *)
  val compare_and_set : 'a t -> 'a -> 'a -> bool

  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

(** Production implementation: a zero-cost module alias. *)
module Real = Stdlib.Atomic

(* Compile-time check that the alias satisfies the signature without
   sealing it (sealing would hide the primitives). *)
module _ : S = Real
