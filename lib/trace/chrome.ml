(** Chrome trace-event exporter: turns an {!Eventlog} (notably the
    hardware logs recorded by [lib/exec]'s per-domain tracer) into the
    Trace Event Format JSON that Perfetto and [chrome://tracing] load
    directly.

    One track ([tid]) per capability/worker.  Span events (task, eval,
    parked, worker lifetime, per-domain GC) become complete slices
    ([ph = "X"] with a duration) — complete slices need no begin/end
    nesting discipline, so a log whose unmatched opens were truncated
    by a ring buffer still renders.  Point events (spark create / run /
    fizzle, steal attempt/success, future forced) become instants
    ([ph = "i"]).  Timestamps are microseconds as the format requires;
    the source log is nanoseconds. *)

module Json = Repro_util.Json_out

let us_of_ns ns = float_of_int ns /. 1e3

(* A span kind is identified by (cap, name); spans of the same kind on
   the same track close LIFO (nested helping produces nested task
   slices). *)
type open_span = { start_ns : int }

let slice ~pid ~tid ~name ~cat ~ts_ns ~dur_ns args =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str "X");
       ("ts", Json.Float (us_of_ns ts_ns));
       ("dur", Json.Float (us_of_ns dur_ns));
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ match args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let instant ~pid ~tid ~name ~cat ~ts_ns args =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str "i");
       ("s", Json.Str "t");  (* thread-scoped instant *)
       ("ts", Json.Float (us_of_ns ts_ns));
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ match args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let metadata ~pid ~tid ~name value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("ts", Json.Float 0.0);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]

let of_eventlog ?(pid = 0) ?(process_name = "repro-exec") ?(instants = [])
    ~ncaps log =
  let events = Eventlog.events log in
  let out = ref [] in
  let push j = out := j :: !out in
  let last_ts = List.fold_left (fun acc (t, _) -> max acc t) 0 events in
  (* per-(cap, kind) stacks of open spans *)
  let open_spans : (int * string, open_span list) Hashtbl.t =
    Hashtbl.create 32
  in
  let begin_span cap kind ts =
    let k = (cap, kind) in
    let st = Option.value ~default:[] (Hashtbl.find_opt open_spans k) in
    Hashtbl.replace open_spans k ({ start_ns = ts } :: st)
  in
  let end_span ?(cat = "exec") cap kind ts =
    let k = (cap, kind) in
    match Hashtbl.find_opt open_spans k with
    | Some (sp :: rest) ->
        Hashtbl.replace open_spans k rest;
        push
          (slice ~pid ~tid:cap ~name:kind ~cat ~ts_ns:sp.start_ns
             ~dur_ns:(max 0 (ts - sp.start_ns))
             [])
    | _ -> ()  (* end without begin: dropped by the ring buffer *)
  in
  List.iter
    (fun (ts, ev) ->
      match (ev : Eventlog.event) with
      | Task_begin { cap } -> begin_span cap "task" ts
      | Task_end { cap } -> end_span cap "task" ts
      | Eval_begin { cap } -> begin_span cap "eval" ts
      | Eval_end { cap } -> end_span cap "eval" ts
      | Cap_parked { cap } -> begin_span cap "parked" ts
      | Cap_unparked { cap } -> end_span cap "parked" ts
      | Worker_begin { cap } -> begin_span cap "worker" ts
      | Worker_end { cap } -> end_span cap "worker" ts
      | Gc_begin { cap; major } ->
          begin_span cap (if major then "gc:major" else "gc:minor") ts
      | Gc_end { cap; major } ->
          end_span ~cat:"gc" cap (if major then "gc:major" else "gc:minor") ts
      | Spark_created { cap } -> push (instant ~pid ~tid:cap ~name:"spark-create" ~cat:"spark" ~ts_ns:ts [])
      | Spark_converted { cap } -> push (instant ~pid ~tid:cap ~name:"spark-run" ~cat:"spark" ~ts_ns:ts [])
      | Spark_fizzled { cap } -> push (instant ~pid ~tid:cap ~name:"spark-fizzle" ~cat:"spark" ~ts_ns:ts [])
      | Steal_attempt { thief; victim } ->
          push
            (instant ~pid ~tid:thief ~name:"steal-attempt" ~cat:"steal"
               ~ts_ns:ts
               [ ("victim", Json.Int victim) ])
      | Steal_success { thief; victim } ->
          push
            (instant ~pid ~tid:thief ~name:"steal" ~cat:"steal" ~ts_ns:ts
               [ ("victim", Json.Int victim) ])
      | Future_forced { cap } ->
          push (instant ~pid ~tid:cap ~name:"force-wait" ~cat:"future" ~ts_ns:ts [])
      | Custom s -> push (instant ~pid ~tid:0 ~name:s ~cat:"custom" ~ts_ns:ts [])
      | _ -> ())
    events;
  (* close anything the log ended inside of *)
  Hashtbl.iter
    (fun (cap, kind) spans ->
      List.iter
        (fun sp ->
          push
            (slice ~pid ~tid:cap ~name:kind ~cat:"exec" ~ts_ns:sp.start_ns
               ~dur_ns:(max 0 (last_ts - sp.start_ns))
               []))
        spans)
    open_spans;
  (* caller-supplied markers (e.g. periodic metric-snapshot instants)
     on track 0, with their numeric payload as args *)
  List.iter
    (fun (ts_ns, name, args) ->
      push
        (instant ~pid ~tid:0 ~name ~cat:"metrics" ~ts_ns
           (List.map (fun (k, v) -> (k, Json.Float v)) args)))
    instants;
  let meta =
    metadata ~pid ~tid:0 ~name:"process_name" process_name
    :: List.init (max 1 ncaps) (fun cap ->
           metadata ~pid ~tid:cap ~name:"thread_name"
             (Printf.sprintf "worker %d" cap))
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.rev !out));
      ("displayTimeUnit", Json.Str "ns");
    ]

let to_file ?pid ?process_name ?instants ~ncaps log path =
  Json.to_file path (of_eventlog ?pid ?process_name ?instants ~ncaps log)
