(** Chrome trace-event (Perfetto / [chrome://tracing]) exporter for
    {!Eventlog} values: one track per capability/worker, span events as
    complete slices ([ph = "X"]), point events as thread-scoped
    instants ([ph = "i"]), GC spans in their own category.  Every
    emitted event carries [ph]/[ts]/[pid]/[tid]; timestamps are
    microseconds. *)

(** [of_eventlog ~ncaps log] builds the JSON document
    ([{"traceEvents": [...], ...}]).  [ncaps] sets how many
    thread-name metadata records are emitted. *)
val of_eventlog :
  ?pid:int -> ?process_name:string -> ncaps:int -> Eventlog.t -> Repro_util.Json_out.t

val to_file :
  ?pid:int -> ?process_name:string -> ncaps:int -> Eventlog.t -> string -> unit
