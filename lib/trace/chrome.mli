(** Chrome trace-event (Perfetto / [chrome://tracing]) exporter for
    {!Eventlog} values: one track per capability/worker, span events as
    complete slices ([ph = "X"]), point events as thread-scoped
    instants ([ph = "i"]), GC spans in their own category.  Every
    emitted event carries [ph]/[ts]/[pid]/[tid]; timestamps are
    microseconds. *)

(** [of_eventlog ~ncaps log] builds the JSON document
    ([{"traceEvents": [...], ...}]).  [ncaps] sets how many
    thread-name metadata records are emitted.  [instants] are extra
    caller-supplied markers [(ts_ns, name, args)] drawn as
    thread-scoped instants on track 0 in the ["metrics"] category —
    the executor uses them to pin periodic metric snapshots onto the
    timeline (timestamps must share the log's timebase, i.e. be
    relative to the tracer's epoch). *)
val of_eventlog :
  ?pid:int ->
  ?process_name:string ->
  ?instants:(int * string * (string * float) list) list ->
  ncaps:int ->
  Eventlog.t ->
  Repro_util.Json_out.t

val to_file :
  ?pid:int ->
  ?process_name:string ->
  ?instants:(int * string * (string * float) list) list ->
  ncaps:int ->
  Eventlog.t ->
  string ->
  unit
