(** Structured runtime event log (GHC-eventlog style).

    The paper stresses the importance of adequate parallel-profiling
    tools and uses a custom instrumentation of the threaded RTS fed
    into EdenTV (Sec. I, footnote 1).  Beyond the state timelines of
    {!Trace}, this log records discrete runtime events — thread
    lifecycle, spark lifecycle, GC phases, messages — with timestamps,
    and derives the summary statistics used when analysing runs:
    spark-activation latency, thread lifetimes, GC gap distribution,
    per-PE message counts. *)

type event =
  | Thread_created of { tid : int; cap : int }
  | Thread_finished of { tid : int; cap : int }
  | Thread_blocked of { tid : int; cap : int }
  | Thread_woken of { tid : int; cap : int }
  | Thread_migrated of { tid : int; from_cap : int; to_cap : int }
  | Spark_created of { cap : int }
  | Spark_converted of { cap : int }
  | Spark_stolen of { thief : int }
  | Spark_fizzled of { cap : int }
  | Spark_overflowed of { cap : int }
  | Gc_requested of { cap : int }
  | Gc_started of { minors : int; major : bool }
  | Gc_finished
  | Message_sent of { src : int; dst : int; bytes : int }
  | Message_delivered of { dst : int; bytes : int }
  | Blackhole_entered of { cap : int }
  (* Hardware events (lib/exec's Tracer): the per-domain executor
     records these with monotonic-clock timestamps; caps are worker
     ids.  Begin/end pairs are spans on the worker's timeline. *)
  | Steal_attempt of { thief : int; victim : int }
  | Steal_success of { thief : int; victim : int }
  | Cap_parked of { cap : int }
  | Cap_unparked of { cap : int }
  | Task_begin of { cap : int }
  | Task_end of { cap : int }
  | Eval_begin of { cap : int }  (** future claimed; its body runs *)
  | Eval_end of { cap : int }
  | Future_forced of { cap : int }  (** forcer demanded an unfinished future *)
  | Worker_begin of { cap : int }  (** worker loop / [Pool.run] lifetime *)
  | Worker_end of { cap : int }
  | Gc_begin of { cap : int; major : bool }  (** per-domain GC span *)
  | Gc_end of { cap : int; major : bool }
  | Custom of string

let event_name = function
  | Thread_created _ -> "thread-created"
  | Thread_finished _ -> "thread-finished"
  | Thread_blocked _ -> "thread-blocked"
  | Thread_woken _ -> "thread-woken"
  | Thread_migrated _ -> "thread-migrated"
  | Spark_created _ -> "spark-created"
  | Spark_converted _ -> "spark-converted"
  | Spark_stolen _ -> "spark-stolen"
  | Spark_fizzled _ -> "spark-fizzled"
  | Spark_overflowed _ -> "spark-overflowed"
  | Gc_requested _ -> "gc-requested"
  | Gc_started _ -> "gc-started"
  | Gc_finished -> "gc-finished"
  | Message_sent _ -> "message-sent"
  | Message_delivered _ -> "message-delivered"
  | Blackhole_entered _ -> "blackhole-entered"
  | Steal_attempt _ -> "steal-attempt"
  | Steal_success _ -> "steal-success"
  | Cap_parked _ -> "cap-parked"
  | Cap_unparked _ -> "cap-unparked"
  | Task_begin _ -> "task-begin"
  | Task_end _ -> "task-end"
  | Eval_begin _ -> "eval-begin"
  | Eval_end _ -> "eval-end"
  | Future_forced _ -> "future-forced"
  | Worker_begin _ -> "worker-begin"
  | Worker_end _ -> "worker-end"
  | Gc_begin _ -> "gc-begin"
  | Gc_end _ -> "gc-end"
  | Custom _ -> "custom"

type t = {
  mutable events : (int * event) list;  (** reversed *)
  mutable enabled : bool;
  mutable count : int;
}

let create () = { events = []; enabled = true; count = 0 }
let disable t = t.enabled <- false

let emit t ~time ev =
  if t.enabled then begin
    t.events <- (time, ev) :: t.events;
    t.count <- t.count + 1
  end

let length t = t.count
let events t = List.rev t.events

let pp_event ppf = function
  | Thread_created { tid; cap } -> Format.fprintf ppf "thread %d created on cap %d" tid cap
  | Thread_finished { tid; cap } -> Format.fprintf ppf "thread %d finished on cap %d" tid cap
  | Thread_blocked { tid; cap } -> Format.fprintf ppf "thread %d blocked on cap %d" tid cap
  | Thread_woken { tid; cap } -> Format.fprintf ppf "thread %d woken (cap %d)" tid cap
  | Thread_migrated { tid; from_cap; to_cap } ->
      Format.fprintf ppf "thread %d migrated %d -> %d" tid from_cap to_cap
  | Spark_created { cap } -> Format.fprintf ppf "spark created on cap %d" cap
  | Spark_converted { cap } -> Format.fprintf ppf "spark converted on cap %d" cap
  | Spark_stolen { thief } -> Format.fprintf ppf "spark stolen by cap %d" thief
  | Spark_fizzled { cap } -> Format.fprintf ppf "spark fizzled on cap %d" cap
  | Spark_overflowed { cap } -> Format.fprintf ppf "spark overflowed on cap %d" cap
  | Gc_requested { cap } -> Format.fprintf ppf "gc requested by cap %d" cap
  | Gc_started { minors; major } ->
      Format.fprintf ppf "gc %d started (%s)" minors (if major then "major" else "minor")
  | Gc_finished -> Format.fprintf ppf "gc finished"
  | Message_sent { src; dst; bytes } ->
      Format.fprintf ppf "message %d -> %d (%d bytes)" src dst bytes
  | Message_delivered { dst; bytes } ->
      Format.fprintf ppf "message delivered at %d (%d bytes)" dst bytes
  | Blackhole_entered { cap } -> Format.fprintf ppf "black hole entered on cap %d" cap
  | Steal_attempt { thief; victim } ->
      Format.fprintf ppf "cap %d attempts steal from cap %d" thief victim
  | Steal_success { thief; victim } ->
      Format.fprintf ppf "cap %d stole from cap %d" thief victim
  | Cap_parked { cap } -> Format.fprintf ppf "cap %d parked" cap
  | Cap_unparked { cap } -> Format.fprintf ppf "cap %d unparked" cap
  | Task_begin { cap } -> Format.fprintf ppf "task begins on cap %d" cap
  | Task_end { cap } -> Format.fprintf ppf "task ends on cap %d" cap
  | Eval_begin { cap } -> Format.fprintf ppf "future claimed on cap %d" cap
  | Eval_end { cap } -> Format.fprintf ppf "future done on cap %d" cap
  | Future_forced { cap } ->
      Format.fprintf ppf "cap %d forces an unfinished future" cap
  | Worker_begin { cap } -> Format.fprintf ppf "worker %d starts" cap
  | Worker_end { cap } -> Format.fprintf ppf "worker %d stops" cap
  | Gc_begin { cap; major } ->
      Format.fprintf ppf "%s gc begins on cap %d" (if major then "major" else "minor") cap
  | Gc_end { cap; major } ->
      Format.fprintf ppf "%s gc ends on cap %d" (if major then "major" else "minor") cap
  | Custom s -> Format.pp_print_string ppf s

(** Text dump, one event per line. *)
let dump t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (time, ev) ->
      Buffer.add_string buf
        (Format.asprintf "%12d ns  %a\n" time pp_event ev))
    (events t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Derived statistics                                                  *)
(* ------------------------------------------------------------------ *)

type summary = {
  counts : (string * int) list;  (** events per kind *)
  gc_gaps_ns : Repro_util.Stats.t;  (** mutator time between GCs *)
  gc_pauses_ns : Repro_util.Stats.t;
  thread_lifetimes_ns : Repro_util.Stats.t;
  messages_per_pe : (int * int) array option;  (** (sent, received) *)
}

let summarise ?ncaps t =
  let counts = Hashtbl.create 16 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  let gc_gaps = Repro_util.Stats.create () in
  let gc_pauses = Repro_util.Stats.create () in
  let lifetimes = Repro_util.Stats.create () in
  let born : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_gc_end = ref None and gc_start = ref None in
  (* hardware per-domain GC spans: keyed by cap *)
  let hw_gc_start : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let hw_gc_end : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let per_pe =
    match ncaps with Some n -> Some (Array.make n (0, 0)) | None -> None
  in
  List.iter
    (fun (time, ev) ->
      bump (event_name ev);
      match ev with
      | Thread_created { tid; _ } -> Hashtbl.replace born tid time
      | Thread_finished { tid; _ } -> (
          match Hashtbl.find_opt born tid with
          | Some t0 -> Repro_util.Stats.add lifetimes (float_of_int (time - t0))
          | None -> ())
      | Gc_started _ ->
          gc_start := Some time;
          (match !last_gc_end with
          | Some t0 -> Repro_util.Stats.add gc_gaps (float_of_int (time - t0))
          | None -> ())
      | Gc_finished ->
          last_gc_end := Some time;
          (match !gc_start with
          | Some t0 -> Repro_util.Stats.add gc_pauses (float_of_int (time - t0))
          | None -> ())
      | Gc_begin { cap; _ } ->
          Hashtbl.replace hw_gc_start cap time;
          (match Hashtbl.find_opt hw_gc_end cap with
          | Some t0 -> Repro_util.Stats.add gc_gaps (float_of_int (time - t0))
          | None -> ())
      | Gc_end { cap; _ } -> (
          Hashtbl.replace hw_gc_end cap time;
          match Hashtbl.find_opt hw_gc_start cap with
          | Some t0 ->
              Repro_util.Stats.add gc_pauses (float_of_int (time - t0));
              Hashtbl.remove hw_gc_start cap
          | None -> ())
      | Message_sent { src; dst; _ } -> (
          (* [src] can be -1 for protocol replies sent from scheduler
             context (no thread attribution) *)
          match per_pe with
          | Some arr when src >= 0 && src < Array.length arr && dst >= 0
                          && dst < Array.length arr ->
              let s, r = arr.(src) in
              arr.(src) <- (s + 1, r)
          | _ -> ())
      | Message_delivered { dst; _ } -> (
          match per_pe with
          | Some arr when dst >= 0 && dst < Array.length arr ->
              let s, r = arr.(dst) in
              arr.(dst) <- (s, r + 1)
          | _ -> ())
      | _ -> ())
    (events t);
  {
    counts =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []);
    gc_gaps_ns = gc_gaps;
    gc_pauses_ns = gc_pauses;
    thread_lifetimes_ns = lifetimes;
    messages_per_pe = per_pe;
  }

(* ------------------------------------------------------------------ *)
(* Timeline projection                                                 *)
(* ------------------------------------------------------------------ *)

(** Project a hardware event log (Task/Eval/Park/Gc spans recorded by
    [lib/exec]'s tracer) onto the paper's per-capability state
    timeline, so the EdenTV-style renderers ({!Render},
    {!Render_svg}) work on real runs exactly as on simulated ones.

    State priority per cap: [Gc] while inside a GC span, else
    [Running] while inside a task/eval span, else [Blocked] while
    parked, else [Runnable] while the worker loop is live, else
    [Idle]. *)
let to_trace ~ncaps t =
  let tr = Trace.create ~caps:(max 1 ncaps) in
  let in_gc = Array.make ncaps 0
  and in_run = Array.make ncaps 0
  and parked = Array.make ncaps false
  and live = Array.make ncaps 0 in
  let state_of cap =
    if in_gc.(cap) > 0 then Trace.Gc
    else if in_run.(cap) > 0 then Trace.Running
    else if parked.(cap) then Trace.Blocked
    else if live.(cap) > 0 then Trace.Runnable
    else Trace.Idle
  in
  let bump arr cap d = if cap >= 0 && cap < ncaps then arr.(cap) <- arr.(cap) + d in
  let last = ref 0 in
  List.iter
    (fun (time, ev) ->
      last := max !last time;
      let touch cap =
        if cap >= 0 && cap < ncaps then
          Trace.set_state tr ~time ~cap (state_of cap)
      in
      match ev with
      | Task_begin { cap } | Eval_begin { cap } ->
          bump in_run cap 1;
          touch cap
      | Task_end { cap } | Eval_end { cap } ->
          bump in_run cap (-1);
          touch cap
      | Cap_parked { cap } ->
          if cap >= 0 && cap < ncaps then parked.(cap) <- true;
          touch cap
      | Cap_unparked { cap } ->
          if cap >= 0 && cap < ncaps then parked.(cap) <- false;
          touch cap
      | Worker_begin { cap } ->
          bump live cap 1;
          touch cap
      | Worker_end { cap } ->
          bump live cap (-1);
          touch cap
      | Gc_begin { cap; _ } ->
          bump in_gc cap 1;
          touch cap
      | Gc_end { cap; _ } ->
          bump in_gc cap (-1);
          touch cap
      | Steal_success { thief; victim } ->
          if thief >= 0 && thief < ncaps then
            Trace.marker tr ~time ~cap:thief
              (Printf.sprintf "steal<-%d" victim)
      | _ -> ())
    (events t);
  Trace.finish tr ~time:!last;
  tr

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "@[<v>event counts:@,";
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-20s %d@," k v) s.counts;
  Format.fprintf ppf "gc gaps:    %a@," Repro_util.Stats.pp s.gc_gaps_ns;
  Format.fprintf ppf "gc pauses:  %a@," Repro_util.Stats.pp s.gc_pauses_ns;
  Format.fprintf ppf "thread lifetimes: %a@]" Repro_util.Stats.pp
    s.thread_lifetimes_ns
