(** Structured runtime event log (GHC-eventlog style) — the
    profiling-tool side of the paper's contribution: discrete runtime
    events with timestamps plus derived summary statistics. *)

type event =
  | Thread_created of { tid : int; cap : int }
  | Thread_finished of { tid : int; cap : int }
  | Thread_blocked of { tid : int; cap : int }
  | Thread_woken of { tid : int; cap : int }
  | Thread_migrated of { tid : int; from_cap : int; to_cap : int }
  | Spark_created of { cap : int }
  | Spark_converted of { cap : int }
  | Spark_stolen of { thief : int }
  | Spark_fizzled of { cap : int }
  | Spark_overflowed of { cap : int }
  | Gc_requested of { cap : int }
  | Gc_started of { minors : int; major : bool }
  | Gc_finished
  | Message_sent of { src : int; dst : int; bytes : int }
  | Message_delivered of { dst : int; bytes : int }
  | Blackhole_entered of { cap : int }
  (* Hardware events recorded by [lib/exec]'s per-domain tracer; caps
     are worker ids, begin/end pairs are spans on a worker's
     timeline. *)
  | Steal_attempt of { thief : int; victim : int }
  | Steal_success of { thief : int; victim : int }
  | Cap_parked of { cap : int }
  | Cap_unparked of { cap : int }
  | Task_begin of { cap : int }
  | Task_end of { cap : int }
  | Eval_begin of { cap : int }  (** future claimed; its body runs *)
  | Eval_end of { cap : int }
  | Future_forced of { cap : int }
      (** forcer demanded an unfinished future *)
  | Worker_begin of { cap : int }  (** worker loop / [Pool.run] lifetime *)
  | Worker_end of { cap : int }
  | Gc_begin of { cap : int; major : bool }  (** per-domain GC span *)
  | Gc_end of { cap : int; major : bool }
  | Custom of string

val event_name : event -> string

type t

val create : unit -> t

(** Stop recording (events are dropped). *)
val disable : t -> unit

val emit : t -> time:int -> event -> unit
val length : t -> int

(** Events in emission order, with timestamps. *)
val events : t -> (int * event) list

val pp_event : Format.formatter -> event -> unit

(** Text dump, one event per line. *)
val dump : t -> string

(** Derived statistics. *)
type summary = {
  counts : (string * int) list;  (** events per kind *)
  gc_gaps_ns : Repro_util.Stats.t;  (** mutator time between GCs *)
  gc_pauses_ns : Repro_util.Stats.t;
  thread_lifetimes_ns : Repro_util.Stats.t;
  messages_per_pe : (int * int) array option;
      (** per-PE (sent, received); present when [ncaps] was given *)
}

val summarise : ?ncaps:int -> t -> summary
val pp_summary : Format.formatter -> summary -> unit

(** Project a hardware event log onto the per-capability state
    timeline ([Gc] > [Running] > [Blocked] > [Runnable] > [Idle]), so
    the EdenTV-style {!Render}/{!Render_svg} renderers work on real
    runs exactly as on simulated ones.  Only the span events
    (task/eval, park, worker, GC) and steal markers contribute. *)
val to_trace : ncaps:int -> t -> Trace.t
