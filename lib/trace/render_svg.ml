(** SVG renderer for traces: per-capability activity bars over time,
    using the EdenTV colour scheme the paper's Figs. 2 and 4 use
    (green = running, yellow = runnable/sync, red = blocked,
    blue-grey = idle, purple = GC).

    Produces a self-contained SVG document; the CLI writes it next to
    the ASCII timeline so traces can be inspected graphically. *)

let colour = function
  | Trace.Running -> "#2e8b57"
  | Trace.Runnable -> "#e6c229"
  | Trace.Blocked -> "#c0392b"
  | Trace.Idle -> "#bdc9d6"
  | Trace.Gc -> "#7d3c98"

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render [t] as an SVG document.  [width] is the drawing width in
    pixels for the time axis; each capability gets a [row_height]px
    bar. *)
let render ?(width = 960) ?(row_height = 22) ?title (t : Trace.t) =
  let caps = Trace.caps t in
  let end_time = max 1 (Trace.end_time t) in
  let left = 52 and top = 28 in
  let legend_h = 26 in
  let total_w = left + width + 16 in
  let total_h = top + (caps * (row_height + 4)) + legend_h + 30 in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"11\">\n"
       total_w total_h total_w total_h);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
       total_w total_h);
  (match title with
  | Some s ->
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%d\" y=\"16\" font-size=\"13\" font-weight=\"bold\">%s \
            (%.2f ms virtual, %.1f%% utilisation)</text>\n"
           left (xml_escape s)
           (float_of_int end_time /. 1e6)
           (100.0 *. Trace.utilisation t))
  | None -> ());
  let x_of time = left + (time * width / end_time) in
  let segs = Trace.segments t in
  Array.iteri
    (fun cap capsegs ->
      let y = top + (cap * (row_height + 4)) in
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"4\" y=\"%d\" fill=\"#333\">cap %d</text>\n"
           (y + (row_height / 2) + 4)
           cap);
      List.iter
        (fun (t0, t1, st) ->
          let x0 = x_of t0 and x1 = x_of t1 in
          if x1 > x0 then
            Buffer.add_string buf
              (Printf.sprintf
                 "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
                  fill=\"%s\"><title>%s: %.3f–%.3f ms</title></rect>\n"
                 x0 y (max 1 (x1 - x0)) row_height (colour st)
                 (Trace.state_name st)
                 (float_of_int t0 /. 1e6)
                 (float_of_int t1 /. 1e6)))
        capsegs)
    segs;
  (* time axis *)
  let axis_y = top + (caps * (row_height + 4)) + 4 in
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#555\"/>\n" left
       axis_y (left + width) axis_y);
  for tick = 0 to 4 do
    let time = end_time * tick / 4 in
    let x = x_of time in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#555\"/>\n\
          <text x=\"%d\" y=\"%d\" text-anchor=\"middle\" fill=\"#333\">%.1f \
          ms</text>\n"
         x axis_y x (axis_y + 4) x (axis_y + 16)
         (float_of_int time /. 1e6))
  done;
  (* legend *)
  let legend_y = axis_y + 24 in
  let lx = ref left in
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"12\" height=\"12\" fill=\"%s\"/>\n\
            <text x=\"%d\" y=\"%d\" fill=\"#333\">%s</text>\n"
           !lx legend_y (colour st) (!lx + 16) (legend_y + 10)
           (Trace.state_name st));
      lx := !lx + 100)
    Trace.all_states;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let to_file ?width ?row_height ?title t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?width ?row_height ?title t))
