(** Minimal JSON parser (the input counterpart of {!Json_out}, no
    dependencies): parses the machine-readable dumps this repo emits —
    bench documents, Chrome trace-event files — back into
    {!Json_out.t} values so post-hoc analyzers ([repro_cli profile])
    can consume them.

    Accepts standard JSON.  Numbers parse to [Int] when they are exact
    integers (no fraction, no exponent, within [int] range) and to
    [Float] otherwise, which round-trips everything {!Json_out}
    produces. *)

type t = Json_out.t

exception Parse_error of { pos : int; msg : string }

let error pos msg = raise (Parse_error { pos; msg })

let () =
  Printexc.register_printer (function
    | Parse_error { pos; msg } ->
        Some (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)
    | _ -> None)

type state = { src : string; mutable pos : int }

let peek s = if s.pos < String.length s.src then Some s.src.[s.pos] else None

let skip_ws s =
  while
    s.pos < String.length s.src
    && match s.src.[s.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    s.pos <- s.pos + 1
  done

let expect s c =
  match peek s with
  | Some d when d = c -> s.pos <- s.pos + 1
  | Some d -> error s.pos (Printf.sprintf "expected %C, found %C" c d)
  | None -> error s.pos (Printf.sprintf "expected %C, found end of input" c)

let literal s word value =
  let n = String.length word in
  if s.pos + n <= String.length s.src && String.sub s.src s.pos n = word then begin
    s.pos <- s.pos + n;
    value
  end
  else error s.pos (Printf.sprintf "expected %s" word)

(* UTF-8 encode one scalar value (surrogate pairs are combined by the
   caller). *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 s =
  if s.pos + 4 > String.length s.src then error s.pos "truncated \\u escape";
  let v = ref 0 in
  for i = s.pos to s.pos + 3 do
    let d =
      match s.src.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | c -> error i (Printf.sprintf "bad hex digit %C in \\u escape" c)
    in
    v := (!v * 16) + d
  done;
  s.pos <- s.pos + 4;
  !v

let parse_string s =
  expect s '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if s.pos >= String.length s.src then error s.pos "unterminated string";
    match s.src.[s.pos] with
    | '"' -> s.pos <- s.pos + 1
    | '\\' ->
        s.pos <- s.pos + 1;
        (if s.pos >= String.length s.src then error s.pos "truncated escape";
         let c = s.src.[s.pos] in
         s.pos <- s.pos + 1;
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             let u = hex4 s in
             if u >= 0xD800 && u <= 0xDBFF then begin
               (* high surrogate: require \uDC00-\uDFFF to follow *)
               if
                 s.pos + 1 < String.length s.src
                 && s.src.[s.pos] = '\\'
                 && s.src.[s.pos + 1] = 'u'
               then begin
                 s.pos <- s.pos + 2;
                 let lo = hex4 s in
                 if lo < 0xDC00 || lo > 0xDFFF then
                   error s.pos "invalid low surrogate";
                 add_utf8 buf
                   (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
               end
               else error s.pos "unpaired high surrogate"
             end
             else add_utf8 buf u
         | c -> error (s.pos - 1) (Printf.sprintf "bad escape \\%C" c));
        go ()
    | c ->
        Buffer.add_char buf c;
        s.pos <- s.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number s =
  let start = s.pos in
  let is_int = ref true in
  (match peek s with Some '-' -> s.pos <- s.pos + 1 | _ -> ());
  let digits () =
    let d0 = s.pos in
    while
      s.pos < String.length s.src
      && match s.src.[s.pos] with '0' .. '9' -> true | _ -> false
    do
      s.pos <- s.pos + 1
    done;
    if s.pos = d0 then error s.pos "expected digit"
  in
  digits ();
  (match peek s with
  | Some '.' ->
      is_int := false;
      s.pos <- s.pos + 1;
      digits ()
  | _ -> ());
  (match peek s with
  | Some ('e' | 'E') ->
      is_int := false;
      s.pos <- s.pos + 1;
      (match peek s with
      | Some ('+' | '-') -> s.pos <- s.pos + 1
      | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub s.src start (s.pos - start) in
  if !is_int then
    match int_of_string_opt text with
    | Some i -> Json_out.Int i
    | None -> Json_out.Float (float_of_string text)
  else Json_out.Float (float_of_string text)

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> error s.pos "unexpected end of input"
  | Some '{' ->
      s.pos <- s.pos + 1;
      skip_ws s;
      if peek s = Some '}' then begin
        s.pos <- s.pos + 1;
        Json_out.Obj []
      end
      else begin
        let rec members acc =
          skip_ws s;
          let key = parse_string s in
          skip_ws s;
          expect s ':';
          let v = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              s.pos <- s.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              s.pos <- s.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> error s.pos "expected ',' or '}' in object"
        in
        Json_out.Obj (members [])
      end
  | Some '[' ->
      s.pos <- s.pos + 1;
      skip_ws s;
      if peek s = Some ']' then begin
        s.pos <- s.pos + 1;
        Json_out.List []
      end
      else begin
        let rec elements acc =
          let v = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              s.pos <- s.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              s.pos <- s.pos + 1;
              List.rev (v :: acc)
          | _ -> error s.pos "expected ',' or ']' in array"
        in
        Json_out.List (elements [])
      end
  | Some '"' -> Json_out.Str (parse_string s)
  | Some 't' -> literal s "true" (Json_out.Bool true)
  | Some 'f' -> literal s "false" (Json_out.Bool false)
  | Some 'n' -> literal s "null" Json_out.Null
  | Some ('-' | '0' .. '9') -> parse_number s
  | Some c -> error s.pos (Printf.sprintf "unexpected character %C" c)

let parse src =
  let s = { src; pos = 0 } in
  let v = parse_value s in
  skip_ws s;
  if s.pos <> String.length src then error s.pos "trailing garbage after value";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---------------- accessors ---------------- *)

let member key = function
  | Json_out.Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Json_out.List xs -> Some xs | _ -> None
let to_string = function Json_out.Str s -> Some s | _ -> None

let to_float = function
  | Json_out.Int i -> Some (float_of_int i)
  | Json_out.Float f -> Some f
  | _ -> None

let to_int = function
  | Json_out.Int i -> Some i
  | Json_out.Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
