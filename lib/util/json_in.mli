(** Minimal JSON parser: reads the documents {!Json_out} writes (bench
    dumps, Chrome trace-event files) back into {!Json_out.t} values.
    Numbers become [Int] when they are exact in-range integers, [Float]
    otherwise. *)

type t = Json_out.t

exception Parse_error of { pos : int; msg : string }

(** @raise Parse_error on malformed input (including trailing
    garbage). *)
val parse : string -> t

(** @raise Parse_error on malformed input.
    @raise Sys_error if [path] cannot be read. *)
val of_file : string -> t

(** [member key json] is the value bound to [key] when [json] is an
    object containing it. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_string : t -> string option

(** Accepts both [Int] and [Float]. *)
val to_float : t -> float option

(** Accepts [Int] and integer-valued [Float]. *)
val to_int : t -> int option
