(** Minimal JSON emitter (no dependencies, output only).

    Used by the benchmark harness to dump machine-readable results
    ([BENCH_exec.json], [BENCH_repro.json]).  Covers exactly the JSON
    we produce: null/bool/int/float/string plus arrays and objects.
    Floats that have no JSON representation (nan, infinities) are
    emitted as [null] so the output always parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string b "null"
  | _ ->
      let s = Printf.sprintf "%.17g" f in
      (* shortest round-trip representation when it suffices *)
      let short = Printf.sprintf "%.12g" f in
      Buffer.add_string b (if float_of_string short = f then short else s)

let rec add b ~indent ~level v =
  let pad n = Buffer.add_string b (String.make (n * indent) ' ') in
  let newline () = if indent > 0 then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | Str s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_char b '[';
      newline ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          add b ~indent ~level:(level + 1) x)
        xs;
      newline ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      newline ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          escape_string b k;
          Buffer.add_string b (if indent > 0 then ": " else ":");
          add b ~indent ~level:(level + 1) x)
        fields;
      newline ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = 2) v =
  let b = Buffer.create 1024 in
  add b ~indent ~level:0 v;
  Buffer.contents b

let to_file ?indent path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?indent v);
      output_char oc '\n')
