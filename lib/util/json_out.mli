(** Minimal JSON emitter (output only, no dependencies) used for the
    machine-readable benchmark dumps.  Non-finite floats are emitted as
    [null] so the output always parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Render; [indent = 0] gives compact single-line output
    (default: 2-space pretty printing). *)
val to_string : ?indent:int -> t -> string

(** Write to [path] with a trailing newline. *)
val to_file : ?indent:int -> string -> t -> unit
