(** Imperative binary-heap priority queue with stable tie-breaking.

    Keys are integers (virtual-time nanoseconds in the simulator).  Ties
    are broken by insertion order, which makes discrete-event simulation
    runs fully deterministic: two events scheduled for the same instant
    fire in the order they were scheduled. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; size = 0; next_seq = 0 }
let length q = q.size
let is_empty q = q.size = 0

(* A shared filler entry used to null out slots so cleared queues keep
   their backing array (no regrowth from scratch on reuse) without
   retaining the cleared keys/values.  The filler is never read: every
   access is guarded by [q.size].  [Obj.magic] gives it every ['a]. *)
let dummy_entry : Obj.t entry = { key = 0; seq = 0; value = Obj.repr () }

let clear q =
  if q.size > 0 then Array.fill q.arr 0 q.size (Obj.magic dummy_entry);
  q.size <- 0

(* [lt a b] : does entry [a] order strictly before entry [b]? *)
let lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q e =
  let cap = Array.length q.arr in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap e in
    Array.blit q.arr 0 narr 0 q.size;
    q.arr <- narr
  end

let add q key value =
  let e = { key; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q e;
  (* sift up *)
  let i = ref q.size in
  q.size <- q.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt e q.arr.(parent) then begin
      q.arr.(!i) <- q.arr.(parent);
      i := parent
    end
    else continue := false
  done;
  q.arr.(!i) <- e

let min_key q = if q.size = 0 then None else Some q.arr.(0).key

let peek q =
  if q.size = 0 then None else Some (q.arr.(0).key, q.arr.(0).value)

exception Empty

let pop q =
  if q.size = 0 then raise Empty;
  let top = q.arr.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    let e = q.arr.(q.size) in
    (* sift down from the root *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      let probe j = if j < q.size && lt q.arr.(j) e then smallest := j in
      probe l;
      (if l < q.size && r < q.size then
         if lt q.arr.(r) q.arr.(l) && lt q.arr.(r) e then smallest := r
         else ()
       else probe r);
      if !smallest = !i then continue := false
      else begin
        q.arr.(!i) <- q.arr.(!smallest);
        i := !smallest
      end
    done;
    q.arr.(!i) <- e
  end;
  (top.key, top.value)

let pop_opt q = if q.size = 0 then None else Some (pop q)

(* Drain into a list, in priority order.  Destroys the queue contents. *)
let drain q =
  let rec go acc = if is_empty q then List.rev acc else go (pop q :: acc) in
  go []

let of_list l =
  let q = create () in
  List.iter (fun (k, v) -> add q k v) l;
  q
