(** Imperative binary-heap priority queue with stable tie-breaking.

    Keys are integers (virtual-time nanoseconds in the simulator).  Ties
    are broken by insertion order, which makes discrete-event simulation
    runs fully deterministic: two events scheduled for the same instant
    fire in the order they were scheduled. *)

(* Slots are [Free] or an inline-record entry: cleared queues keep
   their backing array (no regrowth from scratch on reuse) without
   retaining the cleared keys/values.  [Free] never appears below
   [q.size]: every access is guarded by it. *)
type 'a slot = Free | Entry of { key : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a slot array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; size = 0; next_seq = 0 }
let length q = q.size
let is_empty q = q.size = 0

let clear q =
  if q.size > 0 then Array.fill q.arr 0 q.size Free;
  q.size <- 0

(* [lt a b] : does entry [a] order strictly before entry [b]? *)
let lt a b =
  match (a, b) with
  | Entry a, Entry b -> a.key < b.key || (a.key = b.key && a.seq < b.seq)
  | _ -> assert false

let grow q =
  let cap = Array.length q.arr in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap Free in
    Array.blit q.arr 0 narr 0 q.size;
    q.arr <- narr
  end

let add q key value =
  let e = Entry { key; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q;
  (* sift up *)
  let i = ref q.size in
  q.size <- q.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt e q.arr.(parent) then begin
      q.arr.(!i) <- q.arr.(parent);
      i := parent
    end
    else continue := false
  done;
  q.arr.(!i) <- e

let min_key q =
  if q.size = 0 then None
  else match q.arr.(0) with Entry e -> Some e.key | Free -> assert false

let peek q =
  if q.size = 0 then None
  else
    match q.arr.(0) with
    | Entry e -> Some (e.key, e.value)
    | Free -> assert false

exception Empty

let pop q =
  if q.size = 0 then raise Empty;
  let top =
    match q.arr.(0) with
    | Entry e -> (e.key, e.value)
    | Free -> assert false
  in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    let e = q.arr.(q.size) in
    q.arr.(q.size) <- Free;
    (* sift down from the root *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      let probe j = if j < q.size && lt q.arr.(j) e then smallest := j in
      probe l;
      (if l < q.size && r < q.size then
         if lt q.arr.(r) q.arr.(l) && lt q.arr.(r) e then smallest := r
         else ()
       else probe r);
      if !smallest = !i then continue := false
      else begin
        q.arr.(!i) <- q.arr.(!smallest);
        i := !smallest
      end
    done;
    q.arr.(!i) <- e
  end
  else q.arr.(0) <- Free;
  top

let pop_opt q = if q.size = 0 then None else Some (pop q)

(* Drain into a list, in priority order.  Destroys the queue contents. *)
let drain q =
  let rec go acc = if is_empty q then List.rev acc else go (pop q :: acc) in
  go []

let of_list l =
  let q = create () in
  List.iter (fun (k, v) -> add q k v) l;
  q
