(** Imperative binary-heap priority queue with {e stable} tie-breaking:
    entries with equal keys pop in insertion order, which makes
    discrete-event simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Empty the queue but keep the allocated backing array (slots are
    nulled out, not dropped), so a cleared queue reused in a hot loop
    does not regrow from the initial capacity. *)
val clear : 'a t -> unit

(** [add q key v] inserts [v] with priority [key] (smaller pops
    first). *)
val add : 'a t -> int -> 'a -> unit

(** Smallest key currently in the queue. *)
val min_key : 'a t -> int option

(** Peek at the minimum entry without removing it. *)
val peek : 'a t -> (int * 'a) option

exception Empty

(** Remove and return the minimum entry.
    @raise Empty when the queue is empty. *)
val pop : 'a t -> int * 'a

val pop_opt : 'a t -> (int * 'a) option

(** Remove everything, in priority order. *)
val drain : 'a t -> (int * 'a) list

val of_list : (int * 'a) list -> 'a t
