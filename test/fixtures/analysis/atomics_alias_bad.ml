(* seeded violations: a module alias of Atomic, then a use through it —
   the regex scanner this engine replaced saw neither *)
module A = Atomic

let c = A.make 0
