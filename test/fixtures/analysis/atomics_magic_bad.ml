(* seeded violation (ported from lint_atomics): Obj.magic *)
let cast x = Obj.magic x
