(* clean: Atomic.make in a comment must not trip the rule *)
let s = "Atomic.make in a string"

module T = Repro_shim.Tatomic

let v c = Sched.Atomic.get c
let w = T.name
let d f = let d0 = Domain.spawn f in Domain.join d0
