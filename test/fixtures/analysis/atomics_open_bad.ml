(* seeded violation: open Stdlib.Atomic puts raw atomics in scope *)
open Stdlib.Atomic
