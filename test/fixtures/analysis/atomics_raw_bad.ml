(* seeded violation (ported from lint_atomics): raw Atomic outside the shim *)
let c = Atomic.make 0
