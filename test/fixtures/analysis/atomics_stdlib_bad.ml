(* seeded violation: Stdlib-qualified Atomic is still raw Atomic *)
let v c = Stdlib.Atomic.get c
