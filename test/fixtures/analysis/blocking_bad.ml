(* seeded violation: a worker loop that takes a lock *)
let rec worker_loop q =
  step q;
  worker_loop q

and step q = Mutex.lock q
