(* clean worker loop: spins and recurses, never blocks; the lock in
   shutdown is fine because shutdown is not reachable from the loop *)
let rec worker_loop q =
  match q with
  | [] -> ()
  | _ :: rest ->
      Domain.cpu_relax ();
      worker_loop rest

let shutdown m = Mutex.lock m
