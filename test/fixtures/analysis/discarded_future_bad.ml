(* seeded violation: the sparked future is ignored, so an exception in
   its closure can never be observed *)
let launch f = ignore (Future.spark f)
