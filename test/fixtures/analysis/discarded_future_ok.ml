(* clean: the future is bound and forced *)
let launch f =
  let fut = Future.spark f in
  Future.force fut
