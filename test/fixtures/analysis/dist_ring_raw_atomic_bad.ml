(* seeded violation: an shm-ring-style transport publishing its tail
   cursor through raw Atomic -- invisible to lib/check's DPOR model *)
let tail = Atomic.make 0
let publish_frame len = Atomic.set tail len
