(* clean: ring control words behind the shim's WORD signature, the
   sanctioned pattern of lib/dist/shm_ring (lib/check substitutes
   traced cells for the mmap'd words) *)
module Word : Repro_shim.Tatomic.WORD with type t = int ref = struct
  type t = int ref

  let load r = !r
  let store r v = r := v
end

let publish_frame (tail : Word.t) len =
  Word.store tail (Word.load tail + len)
