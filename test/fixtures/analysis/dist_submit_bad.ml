(* seeded violation: the farmed closure mutates a captured counter and
   builds a lazy payload -- an unforced thunk crossing the heap boundary *)
let hits = ref 0

let run jobs =
  let results =
    Dist.farm
      (fun job ->
        hits := !hits + 1;
        lazy (job * 2))
      jobs
  in
  List.map Lazy.force results
