(* clean: the submitted payload is computed from state the closure
   allocates itself and is returned fully evaluated *)
let run jobs =
  let outs =
    Dist.submit
      (fun job ->
        let acc = ref 0 in
        List.iter (fun x -> acc := !acc + x) job;
        !acc)
      jobs
  in
  List.fold_left ( + ) 0 outs
