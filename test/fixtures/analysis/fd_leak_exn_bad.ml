(* seeded violation: if ftruncate raises, fd never reaches close *)
let prepare path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  Unix.ftruncate fd 4096;
  Unix.close fd
