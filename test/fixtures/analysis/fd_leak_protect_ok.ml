(* clean: Fun.protect closes the fd on the exceptional path too *)
let prepare path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd 4096)
