(* seeded metrics-discipline violations: module-level tallies *)
let hits = ref 0
module A = Repro_shim.Tatomic.Real
let misses = A.make 0

let bump () = incr hits; A.incr misses
let _ = bump
