(* clean under metrics-discipline: instance-local counters and
   non-integer module state are all fine *)
module A = Repro_shim.Tatomic.Real

type t = { hits : int A.t; mutable label : string }

(* per-instance state, created inside a function *)
let create () = { hits = A.make 0; label = "" }

(* module-level, but not an integer tally *)
let name = ref "worker"
let scale = ref 1.5

let bump t = A.incr t.hits
let _ = (create, bump, name, scale)
