(* seeded violation: this file does not parse *)
let = (
