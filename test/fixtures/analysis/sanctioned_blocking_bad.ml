(* seeded violation: plain blocking helper reachable from the loop *)
let await_io fd = ignore (Unix.select [ fd ] [] [] (-1.0))

let rec worker_loop fd =
  await_io fd;
  worker_loop fd
