(* clean: both blocking helpers are sanctioned suspension points --
   one by registry name, one by attribute *)
let fiber_await fd = ignore (Unix.select [ fd ] [] [] (-1.0))
let[@sanctioned_blocking] park_until_ready m = Mutex.lock m

let rec worker_loop fd m =
  fiber_await fd;
  park_until_ready m;
  worker_loop fd m
