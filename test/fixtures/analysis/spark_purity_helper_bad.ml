(* seeded violation: the closure calls a local helper that writes its
   argument in place *)
let fill dst v =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- v
  done

let run dst =
  Strategies.par (fun () -> fill dst 1) (fun () -> 2)
