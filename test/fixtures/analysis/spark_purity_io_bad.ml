(* seeded violation: I/O inside the sparked closure *)
let run () =
  let fut = Future.spark (fun () -> print_endline "working"; 1) in
  Future.force fut
