(* clean: the closure only mutates a ref it allocates itself, and its
   raise is wrapped in a handler *)
let run xs =
  let fut =
    Future.spark (fun () ->
        let acc = ref 0 in
        List.iter (fun x -> acc := !acc + x) xs;
        try !acc + int_of_string "3" with Failure _ -> !acc)
  in
  let a, b = Strategies.par (fun () -> 1 + 2) (fun () -> 3) in
  a + b + Future.force fut
