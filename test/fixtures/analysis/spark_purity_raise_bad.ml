(* seeded violation: raise with no enclosing handler *)
let run x =
  let fut = Future.spark (fun () -> if x < 0 then failwith "negative" else x) in
  Future.force fut
