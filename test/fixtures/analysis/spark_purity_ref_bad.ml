(* seeded violation: the sparked closure mutates a captured counter *)
let counter = ref 0

let run () =
  let fut = Future.spark (fun () -> counter := !counter + 1; !counter) in
  Future.force fut
