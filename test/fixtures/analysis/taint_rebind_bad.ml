(* seeded violation: no rebinding this time -- the descriptor itself
   reaches the result and is captured by the farmed closure *)
let descr path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  fd

let run path xs =
  let tag = descr path in
  Farm.farm (fun x -> ignore x; tag) xs
