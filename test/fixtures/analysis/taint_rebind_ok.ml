(* clean: the rebinding kills the resource taint, so the value the
   farmed closure captures is a plain int, not a descriptor *)
let descr path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  Unix.close fd;
  let fd = String.length path in
  fd

let run path xs =
  let tag = descr path in
  Farm.farm (fun x -> tag + x) xs
