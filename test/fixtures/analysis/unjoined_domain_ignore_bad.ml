(* seeded violation (ported from lint_atomics): discarded Domain.spawn *)
let start f = ignore (Domain.spawn f)
