(* clean: every spawned domain is joined *)
let run_all fs =
  let ds = List.map Domain.spawn fs in
  List.iter Domain.join ds
