(* seeded violation: the generalised discard the old literal pattern
   missed — piping the handle into ignore *)
let start f = Domain.spawn f |> ignore
