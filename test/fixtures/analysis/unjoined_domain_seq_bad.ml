(* seeded violation: sequence position discards the handle *)
let start f =
  Domain.spawn f;
  ()
