(* seeded violation: wildcard-binding the handle discards it too *)
let start f =
  let _ = Domain.spawn f in
  ()
