(* the blocking primitive lives here, far from any worker loop *)
let nap job = Unix.sleepf (float_of_int job)
