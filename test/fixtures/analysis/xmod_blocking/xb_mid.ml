(* the innocent middleman: no blocking of its own *)
let relay job = Xb_helper.nap job
