(* seeded violation: the blocking call is two modules away -- the loop
   only sees Xb_mid.relay, which in turn calls Xb_helper.nap *)
let rec worker_loop q =
  match q with
  | [] -> ()
  | job :: rest ->
      Xb_mid.relay job;
      worker_loop rest
