(* takes ownership: the descriptor is closed here *)
let finish fd =
  Unix.ftruncate fd 4096;
  Unix.close fd
