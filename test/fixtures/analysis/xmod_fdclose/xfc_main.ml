(* clean: finish is resolved cross-module and found to close fd, so
   ownership transfers at the call *)
let go path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  Xfc_helper.finish fd
