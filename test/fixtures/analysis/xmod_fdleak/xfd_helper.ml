(* uses the descriptor but never takes ownership of it *)
let setup fd = Unix.ftruncate fd 4096
