(* seeded violation: setup is resolved cross-module and found not to
   close fd, so a raise inside it leaks the descriptor *)
let go path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  Xfd_helper.setup fd;
  Unix.close fd
