(* a miniature of lib/fiber's public surface: await and sleep park the
   calling fiber, so the registry sanctions them by (file, name) even
   without the [@sanctioned_blocking] attribute; drain is no suspension
   point and gets no such pass *)
let await m = Mutex.lock m
let sleep secs = Unix.sleepf secs
let drain fd = ignore (Unix.select [ fd ] [] [] (-1.0))
