(* fiber-blocking in a worker is fine (the task parks, the domain moves
   on); the seeded violation is the direct domain-block through drain *)
let rec worker_loop m fd =
  Fiber.await m;
  Fiber.sleep 0.5;
  Fiber.drain fd;
  worker_loop m fd
