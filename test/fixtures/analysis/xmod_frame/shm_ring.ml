(* frame helpers: fill opens a frame and writes its payload plane;
   publish commits it by advancing the shared tail cursor *)
let fill r c =
  let t = Mapped_word.load r.tail_w in
  A1.set r.data_chars t c

let publish r =
  Tatomic.Fence.full ();
  Mapped_word.store r.tail_w 1
