(* seeded violation: the second publish commits a frame that was
   already committed -- the consumer may have freed it *)
let send_twice r c =
  Shm_ring.fill r c;
  Shm_ring.publish r;
  Shm_ring.publish r
