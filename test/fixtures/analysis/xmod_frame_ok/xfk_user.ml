(* clean: one acquire-write-commit cycle per frame *)
let send r c =
  Shm_ring.fill r c;
  Shm_ring.publish r
