(* seeded violation: the farmed closure captures an fd threaded through
   a helper module -- the marshalled copy is dead on the worker *)
let fd = Xm_res.log_fd

let run jobs = Farm.farm (fun job -> ignore fd; job * 2) jobs
