(* clean: the closure captures only the path (a string); the worker
   opens its own descriptor out-of-band *)
let log_path = "/tmp/farm.log"

let run jobs = Farm.farm (fun job -> String.length log_path + job) jobs
