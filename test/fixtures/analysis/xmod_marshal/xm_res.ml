(* the resource is made here: a file descriptor held in module state *)
let log_fd = Unix.openfile "/tmp/farm.log" [ Unix.O_WRONLY ] 0o644
