(* seeded violation: Fault is only ever swallowed by the wildcard --
   a worker reporting an error gets a runtime protocol bounce *)
let await ic =
  match Xp_msg.recv_to_coordinator ic with
  | Xp_msg.Done n -> n
  | Xp_msg.Idle -> 0
  | _ -> failwith "protocol"
