(* the wire protocol: variant types with their recv_* decoders *)
type to_worker = Assign of int | Drain | Quit

type to_coordinator = Done of int | Idle | Fault of string

let recv_to_worker ic = (Marshal.from_channel ic : to_worker)
let recv_to_coordinator ic = (Marshal.from_channel ic : to_coordinator)
