(* the worker side handles every to_worker constructor *)
let serve ic =
  match Xp_msg.recv_to_worker ic with
  | Xp_msg.Assign n -> n
  | Xp_msg.Drain -> 0
  | Xp_msg.Quit -> -1
