(* clean: frame traffic goes through Shm_ring's own API *)
let send ring payload = Shm_ring.write_frame ring payload

let drain ring handle = Shm_ring.consume ring handle
