(* seeded violation: cursor arithmetic on ring words outside Shm_ring *)
let fast_forward r n = r.tail_local <- n

let ring_doorbell r = Shm_ring.Mapped_word.store r.sleeping_w 0
