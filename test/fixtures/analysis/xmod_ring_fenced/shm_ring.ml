(* seeded violation: a ring module whose tail publish has no
   Tatomic.Fence.full in the enclosing binding (StoreLoad unordered) *)
type t = { tail_w : int ref; head_w : int ref }

module Mapped_word = struct
  let load r = !r
  let store r v = r := v
end

let publish t n = Mapped_word.store t.tail_w n
