(* arms the sleep word: after this the peer may skip the doorbell *)
let arm c = Word.store c.sleep_flag 1
