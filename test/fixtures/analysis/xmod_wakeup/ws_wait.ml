(* seeded violation: blocks right after arming without re-reading the
   guard -- work published between the two lines is never noticed *)
let wait c fd buf =
  Ws_arm.arm c;
  ignore (Unix.read fd buf 0 1)
