(* clean: the guard is re-read between arming and blocking, closing
   the Dekker window *)
let wait c fd buf =
  Wsk_arm.arm c;
  if Word.load c.guard = 0 then ignore (Unix.read fd buf 0 1)
