(** Tests for the AST-level analyzer (lib/analysis): every fixture's
    exact rule-id/line pairs, the baseline silencing/un-silencing
    round trip, and the JSON/SARIF renderings. *)

open Alcotest
module Finding = Repro_analysis.Finding
module Rules = Repro_analysis.Rules
module Baseline = Repro_analysis.Baseline
module Engine = Repro_analysis.Engine

let fixture_dir = "fixtures/analysis"
let fixture name = Filename.concat fixture_dir name

let scan name =
  Engine.scan_file ~rules:Rules.all (fixture name)
  |> List.sort_uniq Finding.compare

let pairs findings =
  List.map (fun (f : Finding.t) -> (f.rule, f.line)) findings

(* Every fixture and the exact (rule, line) findings it must produce.
   Clean files assert the absence of false positives; the three
   lint_atomics seeded violations (raw Atomic, Obj.magic, discarded
   Domain.spawn) live on as atomics_raw_bad / atomics_magic_bad /
   unjoined_domain_ignore_bad. *)
let expectations =
  [
    ( "spark_purity_ref_bad.ml",
      [ ("metrics-discipline", 2); ("spark-purity", 5) ] );
    ("spark_purity_helper_bad.ml", [ ("spark-purity", 9) ]);
    ("spark_purity_io_bad.ml", [ ("spark-purity", 3) ]);
    ("spark_purity_raise_bad.ml", [ ("spark-purity", 3) ]);
    ("spark_purity_ok.ml", []);
    ( "dist_submit_bad.ml",
      [
        ("metrics-discipline", 3); ("marshal-safety", 9); ("spark-purity", 9);
        ("spark-purity", 10);
      ] );
    ("dist_submit_ok.ml", []);
    ( "atomics_raw_bad.ml",
      [ ("metrics-discipline", 2); ("atomics-discipline", 2) ] );
    ("atomics_stdlib_bad.ml", [ ("atomics-discipline", 2) ]);
    ("atomics_magic_bad.ml", [ ("atomics-discipline", 2) ]);
    ( "atomics_alias_bad.ml",
      [
        ("atomics-discipline", 3); ("metrics-discipline", 5);
        ("atomics-discipline", 5);
      ] );
    ("atomics_open_bad.ml", [ ("atomics-discipline", 2) ]);
    ("atomics_ok.ml", []);
    ( "metrics_tally_bad.ml",
      [ ("metrics-discipline", 2); ("metrics-discipline", 4) ] );
    ("metrics_tally_ok.ml", []);
    ( "dist_ring_raw_atomic_bad.ml",
      [
        ("metrics-discipline", 3); ("atomics-discipline", 3);
        ("atomics-discipline", 4);
      ] );
    ("dist_ring_shim_ok.ml", []);
    ("blocking_bad.ml", [ ("blocking-in-worker", 6) ]);
    ("blocking_ok.ml", []);
    ("discarded_future_bad.ml", [ ("discarded-future", 3) ]);
    ("discarded_future_ok.ml", []);
    ("unjoined_domain_ignore_bad.ml", [ ("unjoined-domain", 2) ]);
    ("unjoined_domain_pipe_bad.ml", [ ("unjoined-domain", 3) ]);
    ("unjoined_domain_wildcard_bad.ml", [ ("unjoined-domain", 3) ]);
    ("unjoined_domain_seq_bad.ml", [ ("unjoined-domain", 3) ]);
    ("unjoined_domain_ok.ml", []);
    ("parse_error_bad.ml", [ ("parse-error", 2) ]);
    ("fd_leak_exn_bad.ml", [ ("fd-leak", 3) ]);
    ("fd_leak_protect_ok.ml", []);
    ("taint_rebind_bad.ml", [ ("marshal-safety", 9) ]);
    ("taint_rebind_ok.ml", []);
    ("sanctioned_blocking_bad.ml", [ ("blocking-in-worker", 2) ]);
    ("sanctioned_blocking_ok.ml", []);
  ]

let fixture_case (name, expected) () =
  check
    (list (pair string int))
    name expected
    (pairs (scan name))

(* ---------------- cross-module fixture groups ---------------- *)

(* Each group is a directory of files that only violate a rule when
   linked together; expectations are exact (rule, file, line) triples.
   The group file counts feed the whole-tree aggregate below. *)
let group_expectations =
  [
    ( "xmod_blocking",
      3,
      [ ("blocking-in-worker", "xmod_blocking/xb_helper.ml", 2) ] );
    ( "xmod_marshal",
      3,
      [ ("marshal-safety", "xmod_marshal/xm_main.ml", 5) ] );
    ( "xmod_protocol",
      3,
      [ ("protocol-exhaustiveness", "xmod_protocol/xp_msg.ml", 4) ] );
    ( "xmod_ring",
      2,
      [
        ("ring-discipline", "xmod_ring/xr_outside.ml", 2);
        ("ring-discipline", "xmod_ring/xr_outside.ml", 4);
        ("ring-discipline", "xmod_ring/xr_outside.ml", 4);
      ] );
    ( "xmod_ring_fenced",
      1,
      [ ("ring-discipline", "xmod_ring_fenced/shm_ring.ml", 10) ] );
    ("xmod_frame", 2, [ ("frame-lifetime", "xmod_frame/xf_user.ml", 6) ]);
    ("xmod_frame_ok", 2, []);
    ("xmod_fdleak", 2, [ ("fd-leak", "xmod_fdleak/xfd_main.ml", 4) ]);
    ("xmod_fdclose", 2, []);
    ("xmod_wakeup", 2, [ ("lost-wakeup", "xmod_wakeup/ws_wait.ml", 5) ]);
    ("xmod_wakeup_ok", 2, []);
    ( "xmod_fiber",
      2,
      [ ("blocking-in-worker", "xmod_fiber/fiber.ml", 7) ] );
  ]

(* strip the fixtures/analysis/ prefix so the tables above stay short *)
let strip_fixture_prefix f =
  let p = fixture_dir ^ "/" in
  if String.length f > String.length p && String.sub f 0 (String.length p) = p
  then String.sub f (String.length p) (String.length f - String.length p)
  else f

let group_case (dir, nfiles, expected) () =
  let r = Engine.run ~rules:Rules.all [ fixture dir ] in
  check int (dir ^ " file count") nfiles r.Engine.files_scanned;
  check
    (list (pair string (pair string int)))
    dir
    (List.map (fun (rule, file, line) -> (rule, (file, line))) expected)
    (List.map
       (fun (f : Finding.t) -> (f.rule, (strip_fixture_prefix f.file, f.line)))
       r.Engine.fresh)

(* A lone file from a group shows nothing: the facts only become a
   violation when the linker sees the other modules. *)
let singleton_scan_misses_cross_module () =
  check
    (list (pair string int))
    "xb_worker alone" []
    (pairs (scan "xmod_blocking/xb_worker.ml"));
  check
    (list (pair string int))
    "xm_main alone" []
    (pairs (scan "xmod_marshal/xm_main.ml"));
  check
    (list (pair string int))
    "xp_msg alone" []
    (pairs (scan "xmod_protocol/xp_msg.ml"))

(* The whole fixture tree through Engine.run: file count and total
   finding count must agree with the per-file and per-group tables (no
   fixture silently skipped, no finding double-reported, and linking
   all groups at once does not cross-contaminate them). *)
let engine_run_aggregates () =
  let r = Engine.run ~rules:Rules.all [ fixture_dir ] in
  check int "files scanned"
    (List.length expectations
    + List.fold_left (fun a (_, n, _) -> a + n) 0 group_expectations)
    r.Engine.files_scanned;
  check int "total findings"
    (List.fold_left (fun a (_, e) -> a + List.length e) 0 expectations
    + List.fold_left (fun a (_, _, e) -> a + List.length e) 0 group_expectations)
    (List.length r.Engine.fresh);
  check int "nothing suppressed without a baseline" 0
    (List.length r.Engine.suppressed);
  check int "every file parsed, none cached" r.Engine.files_scanned
    r.Engine.files_parsed

(* Rule ids are the stable interface for baselines and --rule: lock
   them down. *)
let rule_ids_stable () =
  check (list string) "registry ids"
    [
      "spark-purity"; "atomics-discipline"; "metrics-discipline";
      "blocking-in-worker";
      "discarded-future"; "unjoined-domain"; "marshal-safety";
      "ring-discipline"; "protocol-exhaustiveness"; "frame-lifetime";
      "fd-leak"; "lost-wakeup";
    ]
    Rules.ids

let baseline_entry name line rule =
  Printf.sprintf "%s %s:%d -- seeded fixture, intentionally violating" rule
    (fixture name) line

(* A matching baseline entry silences the finding; removing it brings
   the finding back; an entry that matches nothing is stale. *)
let baseline_roundtrip () =
  (* the fixture also trips metrics-discipline on its module-level
     counter; keep just the spark-purity finding for the round trip *)
  let findings =
    List.filter
      (fun (f : Finding.t) -> f.rule = "spark-purity")
      (scan "spark_purity_ref_bad.ml")
  in
  check int "one finding to play with" 1 (List.length findings);
  let b =
    Baseline.of_string (baseline_entry "spark_purity_ref_bad.ml" 5 "spark-purity")
  in
  let fresh, suppressed, stale = Baseline.apply b findings in
  check int "silenced" 0 (List.length fresh);
  check int "recorded as suppressed" 1 (List.length suppressed);
  check int "no stale entries" 0 (List.length stale);
  (* un-silence: no baseline *)
  let fresh, suppressed, _ = Baseline.apply [] findings in
  check int "back without baseline" 1 (List.length fresh);
  check int "no suppressions" 0 (List.length suppressed);
  (* wrong line -> stale entry, finding stays fresh *)
  let b2 =
    Baseline.of_string
      (baseline_entry "spark_purity_ref_bad.ml" 999 "spark-purity")
  in
  let fresh, _, stale = Baseline.apply b2 findings in
  check int "finding survives mismatch" 1 (List.length fresh);
  check int "entry reported stale" 1 (List.length stale)

(* Baseline paths are normalised, so an entry written as ../<path>
   still matches (the dune @lint rule runs from _build/default/tools). *)
let baseline_path_normalisation () =
  let findings = scan "atomics_magic_bad.ml" in
  let b =
    Baseline.of_string
      (Printf.sprintf "atomics-discipline ../%s:2 -- seeded fixture"
         (fixture "atomics_magic_bad.ml"))
  in
  let fresh, suppressed, _ = Baseline.apply b findings in
  check int "normalised path matches" 0 (List.length fresh);
  check int "suppressed" 1 (List.length suppressed)

let baseline_rejects_missing_justification () =
  check_raises "no justification"
    (Failure "<baseline>:1: baseline syntax error: missing ' -- <justification>'")
    (fun () -> ignore (Baseline.of_string "spark-purity lib/a.ml:3"))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let sarif_shape () =
  let findings = scan "atomics_raw_bad.ml" in
  let fresh, suppressed, _ =
    Baseline.apply
      (Baseline.of_string
         (baseline_entry "atomics_raw_bad.ml" 2 "atomics-discipline"))
      findings
  in
  let report =
    {
      Engine.findings;
      fresh;
      suppressed;
      stale = [];
      duplicate_entries = [];
      files_scanned = 1;
      files_parsed = 1;
      files_cached = 0;
      per_rule = [];
      summarize_ms = 0.;
      link_ms = 0.;
    }
  in
  let s = Repro_util.Json_out.to_string (Engine.sarif_report ~rules:Rules.all report) in
  check bool "declares SARIF 2.1.0" true (contains ~sub:"\"version\": \"2.1.0\"" s);
  check bool "links the 2.1.0 schema" true (contains ~sub:"sarif-2.1.0.json" s);
  check bool "lists the rule" true (contains ~sub:"\"id\": \"atomics-discipline\"" s);
  check bool "result carries ruleId" true
    (contains ~sub:"\"ruleId\": \"atomics-discipline\"" s);
  check bool "1-based SARIF line" true (contains ~sub:"\"startLine\": 2" s);
  check bool "suppression justification travels" true
    (contains ~sub:"seeded fixture, intentionally violating" s)

let json_shape () =
  let r = Engine.run ~rules:Rules.all [ fixture_dir ] in
  let s = Repro_util.Json_out.to_string (Engine.json_report ~rules:Rules.all r) in
  check bool "schema id" true (contains ~sub:"repro/analysis/v2" s);
  check bool "stable rule listing" true
    (contains ~sub:"\"spark-purity\"" s);
  check bool "findings carry hints" true (contains ~sub:"\"hint\"" s);
  check bool "per-rule counts present" true (contains ~sub:"\"per_rule\"" s);
  check bool "cache counters present" true (contains ~sub:"\"files_cached\"" s)

(* ---------------- content-hash baseline keys ---------------- *)

(* The stable part of a baseline key is the digest of the finding's
   source line: a hash entry suppresses even when its advisory line
   number is wrong, and a wrong hash goes stale like any other
   mismatch. *)
let baseline_hash_keying () =
  let findings =
    List.filter
      (fun (f : Finding.t) -> f.rule = "spark-purity")
      (scan "spark_purity_ref_bad.ml")
  in
  let f = List.hd findings in
  check int "engine filled line_hash" 12 (String.length f.Finding.line_hash);
  let entry line hash =
    Baseline.of_string
      (Printf.sprintf "spark-purity %s:%d#%s -- seeded fixture"
         (fixture "spark_purity_ref_bad.ml") line hash)
  in
  (* right hash, hopelessly wrong advisory line: still suppresses *)
  let fresh, suppressed, stale =
    Baseline.apply (entry 999 f.Finding.line_hash) findings
  in
  check int "hash match silences" 0 (List.length fresh);
  check int "suppressed" 1 (List.length suppressed);
  check int "not stale" 0 (List.length stale);
  (* right line, wrong hash: entry goes stale, finding stays fresh *)
  let fresh, _, stale =
    Baseline.apply (entry f.Finding.line "aaaaaaaaaaaa") findings
  in
  check int "hash mismatch keeps finding" 1 (List.length fresh);
  check int "entry reported stale" 1 (List.length stale);
  (* suggest emits the hash-keyed format *)
  check bool "suggest carries the hash" true
    (contains ~sub:("#" ^ f.Finding.line_hash) (Baseline.suggest f))

let baseline_rejects_bad_hash () =
  check_raises "malformed hash"
    (Failure
       "<baseline>:1: baseline syntax error: bad line hash 'ZZZ' (lowercase \
        hex expected)")
    (fun () ->
      ignore (Baseline.of_string "spark-purity lib/a.ml:3#ZZZ -- why"))

(* ---------------- summary cache ---------------- *)

(* Digest-keyed cache: second run parses nothing; editing the file
   invalidates its entry and its findings change accordingly. *)
let cache_invalidation () =
  let tmp = Filename.concat (Filename.get_temp_dir_name ()) "repro_analysis_cache_test" in
  let src = Filename.concat tmp "src" in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm tmp;
  Sys.mkdir tmp 0o700;
  Sys.mkdir src 0o700;
  Fun.protect ~finally:(fun () -> rm tmp) @@ fun () ->
  let file = Filename.concat src "a.ml" in
  let write text =
    let oc = open_out file in
    output_string oc text;
    close_out oc
  in
  let cache_file = Filename.concat tmp "summaries.bin" in
  write "let x = 1\n";
  let r1 = Engine.run ~cache_file ~rules:Rules.all [ src ] in
  check int "cold run parses" 1 r1.Engine.files_parsed;
  check int "cold run caches nothing" 0 r1.Engine.files_cached;
  let r2 = Engine.run ~cache_file ~rules:Rules.all [ src ] in
  check int "warm run parses nothing" 0 r2.Engine.files_parsed;
  check int "warm run hits the cache" 1 r2.Engine.files_cached;
  check int "warm findings identical" (List.length r1.Engine.fresh)
    (List.length r2.Engine.fresh);
  (* edit the file: summary recomputed, new finding surfaces *)
  write "let tail = Atomic.make 0\n";
  let r3 = Engine.run ~cache_file ~rules:Rules.all [ src ] in
  check int "edited file re-parsed" 1 r3.Engine.files_parsed;
  check int "stale entry not reused" 0 r3.Engine.files_cached;
  check
    (list (pair string int))
    "fresh summary carries the new finding"
    [ ("metrics-discipline", 1); ("atomics-discipline", 1) ]
    (List.map (fun (f : Finding.t) -> (f.rule, f.line)) r3.Engine.fresh)

(* The production tree must be clean modulo the checked-in baseline —
   the same gate `dune build @lint` applies, exercised here from the
   test suite so `dune runtest` alone catches a regression.  Sources
   are reachable from _build/default/test via the workspace root. *)
let tree_is_clean_under_baseline () =
  let root = "../../.." in
  let lib = Filename.concat root "lib" and bin = Filename.concat root "bin" in
  if Sys.file_exists lib && Sys.file_exists bin then begin
    let baseline =
      Baseline.load (Filename.concat root "tools/lint_baseline.txt")
    in
    let r = Engine.run ~baseline ~rules:Rules.all [ lib; bin ] in
    let render fs =
      String.concat "; " (List.map Finding.to_string fs)
    in
    check string "no fresh findings" "" (render r.Engine.fresh);
    check int "no stale baseline entries" 0 (List.length r.Engine.stale)
  end

(* Duplicate suppression keys: apply consumes one entry per finding,
   so a repeated key either hides a stale entry or double-suppresses a
   regressed line; the engine reports the repeats and the drivers exit
   2 on them. *)
let baseline_duplicate_detection () =
  let b =
    Baseline.of_string
      "spark-purity lib/a.ml:3#abcdefabcdef -- first\n\
       spark-purity lib/a.ml:9#abcdefabcdef -- same hash, other line\n\
       spark-purity lib/b.ml:3#abcdefabcdef -- other file, not a dup\n\
       fd-leak lib/c.ml:4 -- legacy\n\
       fd-leak lib/c.ml:4 -- legacy repeat\n"
  in
  let dups = Baseline.duplicates b in
  check
    (list (pair string int))
    "second and later occurrences flagged"
    [ ("spark-purity", 2); ("fd-leak", 5) ]
    (List.map (fun (e : Baseline.entry) -> (e.Baseline.rule, e.Baseline.source_line)) dups);
  (* the engine surfaces them in the report and the text rendering *)
  let r = Engine.run ~baseline:b ~rules:Rules.all [ fixture "atomics_ok.ml" ] in
  check int "report carries the duplicates" 2
    (List.length r.Engine.duplicate_entries);
  check bool "text report names them" true
    (contains ~sub:"duplicate baseline entry" (Engine.text_report r))

(* Bumping Cache.format_version must invalidate a warm cache wholesale:
   a version-mismatched file degrades to empty and the next run
   re-summarises everything from cold. *)
let cache_format_version_invalidates () =
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ()) "repro_analysis_fmt_test"
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm tmp;
  Sys.mkdir tmp 0o700;
  Fun.protect ~finally:(fun () -> rm tmp) @@ fun () ->
  let cache_file = Filename.concat tmp "summaries.bin" in
  let roots = [ fixture "atomics_ok.ml"; fixture "blocking_ok.ml" ] in
  let r1 = Engine.run ~cache_file ~rules:Rules.all roots in
  check int "cold run parses all" 2 r1.Engine.files_parsed;
  let r2 = Engine.run ~cache_file ~rules:Rules.all roots in
  check int "warm run parses nothing" 0 r2.Engine.files_parsed;
  (* forge a cache written by a *newer* format: must not be trusted *)
  let oc = open_out_bin cache_file in
  Marshal.to_channel oc
    ((Repro_analysis.Cache.format_version + 1, [])
      : int * (string * Repro_analysis.Summary.t) list)
    [];
  close_out oc;
  let r3 = Engine.run ~cache_file ~rules:Rules.all roots in
  check int "stale format re-parses from cold" 2 r3.Engine.files_parsed;
  check int "no entry survives the bump" 0 r3.Engine.files_cached;
  check int "findings unchanged" (List.length r1.Engine.fresh)
    (List.length r3.Engine.fresh)

(* --since scoping: the report is filtered to the changed files plus
   their reverse call-graph dependents, while the rest of the tree is
   still linked (so cross-module facts stay visible). *)
let since_scopes_to_dependents () =
  (* change only the blocking helper: the finding it causes lives in
     the same group and survives; every other fixture's findings are
     out of focus and dropped *)
  let helper = fixture "xmod_blocking/xb_helper.ml" in
  let r =
    Engine.run ~rules:Rules.all ~since_files:[ helper ] [ fixture_dir ]
  in
  let files =
    List.sort_uniq compare
      (List.map (fun (f : Finding.t) -> strip_fixture_prefix f.Finding.file) r.Engine.fresh)
  in
  check (list string) "only the changed slice reports"
    [ "xmod_blocking/xb_helper.ml" ] files;
  (* an untouched file with no dependence on the change reports nothing *)
  let r2 =
    Engine.run ~rules:Rules.all
      ~since_files:[ fixture "atomics_ok.ml" ]
      [ fixture_dir ]
  in
  check (list string) "independent change focuses to nothing" []
    (List.sort_uniq compare
       (List.map (fun (f : Finding.t) -> f.Finding.file) r2.Engine.fresh));
  (* dependents: changing the deep helper pulls its callers into focus *)
  let deps =
    let summ f =
      let ic = open_in_bin f in
      let source =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Engine.summarize_source ~path:f ~source ~digest:(Digest.string source)
    in
    let summaries =
      List.map summ
        [
          fixture "xmod_blocking/xb_helper.ml";
          fixture "xmod_blocking/xb_mid.ml";
          fixture "xmod_blocking/xb_worker.ml";
        ]
    in
    let program = Repro_analysis.Linker.link summaries in
    Repro_analysis.Linker.dependents program
      ~changed:[ Finding.normalize_path helper ]
  in
  check int "helper + mid + worker in closure" 3 (List.length deps)

let suite =
  ( "analysis",
    List.map
      (fun (name, expected) ->
        test_case ("fixture " ^ name) `Quick (fixture_case (name, expected)))
      expectations
    @ List.map
        (fun ((dir, _, _) as g) ->
          test_case ("linked group " ^ dir) `Quick (group_case g))
        group_expectations
    @ [
        test_case "singleton scan misses cross-module facts" `Quick
          singleton_scan_misses_cross_module;
        test_case "baseline keys on line content hash" `Quick
          baseline_hash_keying;
        test_case "baseline rejects malformed hashes" `Quick
          baseline_rejects_bad_hash;
        test_case "summary cache invalidates on edit" `Quick cache_invalidation;
        test_case "cache format version bump invalidates" `Quick
          cache_format_version_invalidates;
        test_case "baseline duplicates detected" `Quick
          baseline_duplicate_detection;
        test_case "--since scopes to call-graph dependents" `Quick
          since_scopes_to_dependents;
        test_case "engine run aggregates fixtures" `Quick engine_run_aggregates;
        test_case "rule ids are stable" `Quick rule_ids_stable;
        test_case "baseline silences and un-silences" `Quick baseline_roundtrip;
        test_case "baseline normalises paths" `Quick baseline_path_normalisation;
        test_case "baseline requires a justification" `Quick
          baseline_rejects_missing_justification;
        test_case "SARIF 2.1.0 document shape" `Quick sarif_shape;
        test_case "JSON report shape" `Quick json_shape;
        test_case "lib+bin clean under checked-in baseline" `Quick
          tree_is_clean_under_baseline;
      ] )
