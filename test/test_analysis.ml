(** Tests for the AST-level analyzer (lib/analysis): every fixture's
    exact rule-id/line pairs, the baseline silencing/un-silencing
    round trip, and the JSON/SARIF renderings. *)

open Alcotest
module Finding = Repro_analysis.Finding
module Rules = Repro_analysis.Rules
module Baseline = Repro_analysis.Baseline
module Engine = Repro_analysis.Engine

let fixture_dir = "fixtures/analysis"
let fixture name = Filename.concat fixture_dir name

let scan name =
  Engine.scan_file ~rules:Rules.all (fixture name)
  |> List.sort_uniq Finding.compare

let pairs findings =
  List.map (fun (f : Finding.t) -> (f.rule, f.line)) findings

(* Every fixture and the exact (rule, line) findings it must produce.
   Clean files assert the absence of false positives; the three
   lint_atomics seeded violations (raw Atomic, Obj.magic, discarded
   Domain.spawn) live on as atomics_raw_bad / atomics_magic_bad /
   unjoined_domain_ignore_bad. *)
let expectations =
  [
    ("spark_purity_ref_bad.ml", [ ("spark-purity", 5) ]);
    ("spark_purity_helper_bad.ml", [ ("spark-purity", 9) ]);
    ("spark_purity_io_bad.ml", [ ("spark-purity", 3) ]);
    ("spark_purity_raise_bad.ml", [ ("spark-purity", 3) ]);
    ("spark_purity_ok.ml", []);
    ( "dist_submit_bad.ml",
      [ ("spark-purity", 9); ("spark-purity", 10) ] );
    ("dist_submit_ok.ml", []);
    ("atomics_raw_bad.ml", [ ("atomics-discipline", 2) ]);
    ("atomics_stdlib_bad.ml", [ ("atomics-discipline", 2) ]);
    ("atomics_magic_bad.ml", [ ("atomics-discipline", 2) ]);
    ( "atomics_alias_bad.ml",
      [ ("atomics-discipline", 3); ("atomics-discipline", 5) ] );
    ("atomics_open_bad.ml", [ ("atomics-discipline", 2) ]);
    ("atomics_ok.ml", []);
    ( "dist_ring_raw_atomic_bad.ml",
      [ ("atomics-discipline", 3); ("atomics-discipline", 4) ] );
    ("dist_ring_shim_ok.ml", []);
    ("blocking_bad.ml", [ ("blocking-in-worker", 6) ]);
    ("blocking_ok.ml", []);
    ("discarded_future_bad.ml", [ ("discarded-future", 3) ]);
    ("discarded_future_ok.ml", []);
    ("unjoined_domain_ignore_bad.ml", [ ("unjoined-domain", 2) ]);
    ("unjoined_domain_pipe_bad.ml", [ ("unjoined-domain", 3) ]);
    ("unjoined_domain_wildcard_bad.ml", [ ("unjoined-domain", 3) ]);
    ("unjoined_domain_seq_bad.ml", [ ("unjoined-domain", 3) ]);
    ("unjoined_domain_ok.ml", []);
    ("parse_error_bad.ml", [ ("parse-error", 2) ]);
  ]

let fixture_case (name, expected) () =
  check
    (list (pair string int))
    name expected
    (pairs (scan name))

(* The whole fixture tree through Engine.run: file count and total
   finding count must agree with the per-file table (no fixture is
   silently skipped, no finding double-reported). *)
let engine_run_aggregates () =
  let r = Engine.run ~rules:Rules.all [ fixture_dir ] in
  check int "files scanned" (List.length expectations) r.Engine.files_scanned;
  check int "total findings"
    (List.fold_left (fun a (_, e) -> a + List.length e) 0 expectations)
    (List.length r.Engine.fresh);
  check int "nothing suppressed without a baseline" 0
    (List.length r.Engine.suppressed)

(* Rule ids are the stable interface for baselines and --rule: lock
   them down. *)
let rule_ids_stable () =
  check (list string) "registry ids"
    [
      "spark-purity"; "atomics-discipline"; "blocking-in-worker";
      "discarded-future"; "unjoined-domain";
    ]
    Rules.ids

let baseline_entry name line rule =
  Printf.sprintf "%s %s:%d -- seeded fixture, intentionally violating" rule
    (fixture name) line

(* A matching baseline entry silences the finding; removing it brings
   the finding back; an entry that matches nothing is stale. *)
let baseline_roundtrip () =
  let findings = scan "spark_purity_ref_bad.ml" in
  check int "one finding to play with" 1 (List.length findings);
  let b =
    Baseline.of_string (baseline_entry "spark_purity_ref_bad.ml" 5 "spark-purity")
  in
  let fresh, suppressed, stale = Baseline.apply b findings in
  check int "silenced" 0 (List.length fresh);
  check int "recorded as suppressed" 1 (List.length suppressed);
  check int "no stale entries" 0 (List.length stale);
  (* un-silence: no baseline *)
  let fresh, suppressed, _ = Baseline.apply [] findings in
  check int "back without baseline" 1 (List.length fresh);
  check int "no suppressions" 0 (List.length suppressed);
  (* wrong line -> stale entry, finding stays fresh *)
  let b2 =
    Baseline.of_string
      (baseline_entry "spark_purity_ref_bad.ml" 999 "spark-purity")
  in
  let fresh, _, stale = Baseline.apply b2 findings in
  check int "finding survives mismatch" 1 (List.length fresh);
  check int "entry reported stale" 1 (List.length stale)

(* Baseline paths are normalised, so an entry written as ../<path>
   still matches (the dune @lint rule runs from _build/default/tools). *)
let baseline_path_normalisation () =
  let findings = scan "atomics_magic_bad.ml" in
  let b =
    Baseline.of_string
      (Printf.sprintf "atomics-discipline ../%s:2 -- seeded fixture"
         (fixture "atomics_magic_bad.ml"))
  in
  let fresh, suppressed, _ = Baseline.apply b findings in
  check int "normalised path matches" 0 (List.length fresh);
  check int "suppressed" 1 (List.length suppressed)

let baseline_rejects_missing_justification () =
  check_raises "no justification"
    (Failure "<baseline>:1: baseline syntax error: missing ' -- <justification>'")
    (fun () -> ignore (Baseline.of_string "spark-purity lib/a.ml:3"))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let sarif_shape () =
  let findings = scan "atomics_raw_bad.ml" in
  let fresh, suppressed, _ =
    Baseline.apply
      (Baseline.of_string
         (baseline_entry "atomics_raw_bad.ml" 2 "atomics-discipline"))
      findings
  in
  let report =
    {
      Engine.findings;
      fresh;
      suppressed;
      stale = [];
      files_scanned = 1;
    }
  in
  let s = Repro_util.Json_out.to_string (Engine.sarif_report ~rules:Rules.all report) in
  check bool "declares SARIF 2.1.0" true (contains ~sub:"\"version\": \"2.1.0\"" s);
  check bool "links the 2.1.0 schema" true (contains ~sub:"sarif-2.1.0.json" s);
  check bool "lists the rule" true (contains ~sub:"\"id\": \"atomics-discipline\"" s);
  check bool "result carries ruleId" true
    (contains ~sub:"\"ruleId\": \"atomics-discipline\"" s);
  check bool "1-based SARIF line" true (contains ~sub:"\"startLine\": 2" s);
  check bool "suppression justification travels" true
    (contains ~sub:"seeded fixture, intentionally violating" s)

let json_shape () =
  let r = Engine.run ~rules:Rules.all [ fixture_dir ] in
  let s = Repro_util.Json_out.to_string (Engine.json_report ~rules:Rules.all r) in
  check bool "schema id" true (contains ~sub:"repro/analysis/v1" s);
  check bool "stable rule listing" true
    (contains ~sub:"\"spark-purity\"" s);
  check bool "findings carry hints" true (contains ~sub:"\"hint\"" s)

(* The production tree must be clean modulo the checked-in baseline —
   the same gate `dune build @lint` applies, exercised here from the
   test suite so `dune runtest` alone catches a regression.  Sources
   are reachable from _build/default/test via the workspace root. *)
let tree_is_clean_under_baseline () =
  let root = "../../.." in
  let lib = Filename.concat root "lib" and bin = Filename.concat root "bin" in
  if Sys.file_exists lib && Sys.file_exists bin then begin
    let baseline =
      Baseline.load (Filename.concat root "tools/lint_baseline.txt")
    in
    let r = Engine.run ~baseline ~rules:Rules.all [ lib; bin ] in
    let render fs =
      String.concat "; " (List.map Finding.to_string fs)
    in
    check string "no fresh findings" "" (render r.Engine.fresh);
    check int "no stale baseline entries" 0 (List.length r.Engine.stale)
  end

let suite =
  ( "analysis",
    List.map
      (fun (name, expected) ->
        test_case ("fixture " ^ name) `Quick (fixture_case (name, expected)))
      expectations
    @ [
        test_case "engine run aggregates fixtures" `Quick engine_run_aggregates;
        test_case "rule ids are stable" `Quick rule_ids_stable;
        test_case "baseline silences and un-silences" `Quick baseline_roundtrip;
        test_case "baseline normalises paths" `Quick baseline_path_normalisation;
        test_case "baseline requires a justification" `Quick
          baseline_rejects_missing_justification;
        test_case "SARIF 2.1.0 document shape" `Quick sarif_shape;
        test_case "JSON report shape" `Quick json_shape;
        test_case "lib+bin clean under checked-in baseline" `Quick
          tree_is_clean_under_baseline;
      ] )
