(** Tests for the concurrency correctness toolkit ([lib/check]):
    DPOR exploration of the executor's real protocols must pass, seeded
    mutants must be caught with a concrete interleaving, and the
    vector-clock race detector must flag exactly the protocols that
    deserve it. *)

module Sched = Repro_check.Sched
module Event = Repro_check.Event
module Race = Repro_check.Race
module Protocols = Repro_check.Protocols

(* ------------------------------------------------------------------ *)
(* Scheduler basics on tiny hand-rolled scenarios                      *)
(* ------------------------------------------------------------------ *)

(* Two blind increments (get + set, no RMW): the lost-update schedule
   must be among the explored interleavings and fail the final check. *)
let test_sched_finds_lost_update () =
  let scenario () =
    let x = Sched.Atomic.make 0 in
    Sched.set_name x "x";
    Sched.set_printer x string_of_int;
    let bump () =
      let v = Sched.Atomic.get x in
      Sched.Atomic.set x (v + 1)
    in
    ( [ ("t0", bump); ("t1", bump) ],
      fun () ->
        if Sched.Atomic.get x <> 2 then failwith "lost update" )
  in
  match Sched.check ~name:"lost-update" scenario with
  | Sched.Pass _ -> Alcotest.fail "blind get+set increments passed?!"
  | Sched.Fail v ->
      Alcotest.(check bool)
        "reason mentions the final check" true
        (Astring.String.is_infix ~affix:"lost update" v.reason);
      Alcotest.(check bool) "trace is non-empty" true (v.trace <> [])

(* The same program with fetch_and_add is correct, and DPOR should
   recognise the two RMWs commute observationally only when reordered —
   i.e. it explores both orders and both pass. *)
let test_sched_rmw_increments_pass () =
  let scenario () =
    let x = Sched.Atomic.make 0 in
    ( [ ("t0", fun () -> Sched.Atomic.incr x);
        ("t1", fun () -> Sched.Atomic.incr x) ],
      fun () ->
        if Sched.Atomic.get x <> 2 then failwith "lost update" )
  in
  match Sched.check ~name:"rmw-increments" scenario with
  | Sched.Fail v -> Alcotest.failf "unexpected violation: %s" v.reason
  | Sched.Pass s ->
      Alcotest.(check bool)
        "explored both orders of the dependent RMWs" true
        (s.interleavings >= 2)

(* Independent ops on distinct cells: partial-order reduction should
   collapse the exploration to a single interleaving. *)
let test_sched_independent_ops_one_run () =
  let scenario () =
    let x = Sched.Atomic.make 0 and y = Sched.Atomic.make 0 in
    ( [ ("t0", fun () -> Sched.Atomic.set x 1);
        ("t1", fun () -> Sched.Atomic.set y 1) ],
      fun () ->
        if Sched.Atomic.get x + Sched.Atomic.get y <> 2 then
          failwith "write lost" )
  in
  match Sched.check ~name:"independent" scenario with
  | Sched.Fail v -> Alcotest.failf "unexpected violation: %s" v.reason
  | Sched.Pass s ->
      Alcotest.(check int) "one interleaving suffices" 1 s.interleavings

(* wait_until with no-one to wake is a deadlock, and the report says so. *)
let test_sched_reports_deadlock () =
  let scenario () =
    let flag = Sched.Atomic.make false in
    ( [ ("waiter",
         fun () -> Sched.wait_until (fun () -> Sched.Atomic.get flag)) ],
      fun () -> () )
  in
  match Sched.check ~name:"stuck-waiter" scenario with
  | Sched.Pass _ -> Alcotest.fail "waiting on an unset flag passed?!"
  | Sched.Fail v ->
      Alcotest.(check bool)
        "reported as deadlock" true
        (Astring.String.is_infix ~affix:"deadlock" v.reason)

(* A thread exception is a violation carrying the trace. *)
let test_sched_reports_thread_exception () =
  let scenario () =
    let x = Sched.Atomic.make 0 in
    ( [ ("t0",
         fun () ->
           Sched.Atomic.incr x;
           failwith "kaboom") ],
      fun () -> () )
  in
  match Sched.check ~name:"raiser" scenario with
  | Sched.Pass _ -> Alcotest.fail "raising thread passed?!"
  | Sched.Fail v ->
      Alcotest.(check bool)
        "reason names the thread and exception" true
        (Astring.String.is_infix ~affix:"t0" v.reason
        && Astring.String.is_infix ~affix:"kaboom" v.reason)

(* ------------------------------------------------------------------ *)
(* The executor's protocols and their mutants                          *)
(* ------------------------------------------------------------------ *)

let run_config c =
  let r = Protocols.run c in
  (match r with
  | Sched.Pass s ->
      Alcotest.(check bool)
        (c.Protocols.cname ^ ": explored more than one interleaving")
        true (s.Sched.interleavings >= 2)
  | Sched.Fail _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %s" c.Protocols.cname
       (match c.Protocols.expect with
       | Protocols.Must_pass -> "PASS"
       | Protocols.Must_fail -> "a caught violation"))
    true (Protocols.verdict c r)

let protocol_tests =
  List.map
    (fun c ->
      Alcotest.test_case ("dpor: " ^ c.Protocols.cname) `Quick (fun () ->
          run_config c))
    Protocols.all

(* The lost-wakeup mutant must specifically die as a deadlock with the
   worker named, and the pool handshake (the fixed protocol, mirroring
   Pool.park/signal_work with the wake generation) must be free of it —
   this is the checker-driven regression test for the parking fix. *)
let test_lost_wakeup_is_deadlock () =
  match Protocols.run (Protocols.find "mutant-lost-wakeup") with
  | Sched.Pass _ -> Alcotest.fail "check-then-park mutant passed?!"
  | Sched.Fail v ->
      Alcotest.(check bool)
        "deadlock naming the parked worker" true
        (Astring.String.is_infix ~affix:"deadlock" v.reason
        && Astring.String.is_infix ~affix:"worker" v.reason)

(* Same shape for the fiber layer: the resume-before-park mutant — the
   suspending fiber publishing its parked resume after the emptiness
   check — must die as a deadlock with the fiber named, and the real
   promise handshake (CAS waiter list) must be free of it. *)
let test_fiber_resume_before_park_is_deadlock () =
  match Protocols.run (Protocols.find "mutant-promise-resume-before-park") with
  | Sched.Pass _ -> Alcotest.fail "resume-before-park mutant passed?!"
  | Sched.Fail v ->
      Alcotest.(check bool)
        "deadlock naming the parked fiber" true
        (Astring.String.is_infix ~affix:"deadlock" v.reason
        && Astring.String.is_infix ~affix:"fiber" v.reason)

let test_handshake_regression () =
  match Protocols.run (Protocols.find "pool-park-handshake") with
  | Sched.Fail v ->
      Alcotest.failf "park handshake violated: %s\n%s" v.Sched.reason
        (Event.to_string_trace v.Sched.trace)
  | Sched.Pass _ -> ()

(* Mutant traces must be readable: named cells, named threads. *)
let test_mutant_trace_readable () =
  match Protocols.run (Protocols.find "mutant-lazy-blackhole") with
  | Sched.Pass _ -> Alcotest.fail "lazy black-holing passed?!"
  | Sched.Fail v ->
      let s = Event.to_string_trace v.trace in
      List.iter
        (fun affix ->
          Alcotest.(check bool)
            (Printf.sprintf "trace mentions %S" affix)
            true
            (Astring.String.is_infix ~affix s))
        [ "state"; "evals"; "forcer1"; "forcer2"; "Todo" ]

(* ------------------------------------------------------------------ *)
(* Race detector                                                       *)
(* ------------------------------------------------------------------ *)

(* Hand-build tiny traces. *)
let ev step thread loc kind =
  {
    Event.step;
    thread;
    thread_name = Printf.sprintf "t%d" thread;
    loc;
    loc_name = Printf.sprintf "c%d" loc;
    kind;
    repr = "";
  }

let test_race_unordered_writes_flagged () =
  let trace = [ ev 0 (-1) 0 Event.Make; ev 1 0 0 Event.Set; ev 2 1 0 Event.Set ] in
  let rep = Race.analyse trace in
  Alcotest.(check int) "one race" 1 (List.length rep.Race.races);
  let r = List.hd rep.Race.races in
  Alcotest.(check int) "first writer" 0 r.Race.first.Event.thread;
  Alcotest.(check int) "second writer" 1 r.Race.second.Event.thread

let test_race_rmw_never_races () =
  let trace =
    [ ev 0 (-1) 0 Event.Make; ev 1 0 0 Event.Fetch_add; ev 2 1 0 Event.Fetch_add ]
  in
  Alcotest.(check int) "no races" 0
    (List.length (Race.analyse trace).Race.races)

let test_race_ordered_via_acquire () =
  (* t0 writes, t1 reads (acquiring t0's release), then t1 writes:
     ordered, no race. *)
  let trace =
    [
      ev 0 (-1) 0 Event.Make;
      ev 1 0 0 Event.Set;
      ev 2 1 0 Event.Get;
      ev 3 1 0 Event.Set;
    ]
  in
  Alcotest.(check int) "no races" 0
    (List.length (Race.analyse trace).Race.races)

let test_race_distinct_cells_no_race () =
  let trace =
    [ ev 0 0 0 Event.Set; ev 1 1 1 Event.Set; ev 2 0 0 Event.Set ]
  in
  let rep = Race.analyse trace in
  Alcotest.(check int) "no races" 0 (List.length rep.Race.races);
  Alcotest.(check int) "two cells" 2 rep.Race.locations

(* End-to-end: the lazy-black-holing mutant's violating interleaving
   contains unordered writes to [state]; the CAS-based protocols'
   complete traces are race-free. *)
let test_race_flags_lazy_mutant_trace () =
  match Protocols.run (Protocols.find "mutant-lazy-blackhole") with
  | Sched.Pass _ -> Alcotest.fail "lazy black-holing passed?!"
  | Sched.Fail v ->
      let rep = Race.analyse v.Sched.trace in
      Alcotest.(check bool) "write-write race reported" true
        (rep.Race.races <> []);
      let r = List.hd rep.Race.races in
      Alcotest.(check string) "on the state cell" "state" r.Race.loc_name

let test_race_clean_on_cas_protocols () =
  List.iter
    (fun name ->
      let c = Protocols.find name in
      let dirty = ref [] in
      (match Protocols.run
               ~on_trace:(fun trace ->
                 let rep = Race.analyse trace in
                 if rep.Race.races <> [] then dirty := trace :: !dirty)
               c
       with
      | Sched.Fail v -> Alcotest.failf "%s violated: %s" name v.Sched.reason
      | Sched.Pass _ -> ());
      Alcotest.(check int)
        (name ^ ": no interleaving has unordered conflicting writes")
        0 (List.length !dirty))
    [ "future-exactly-once"; "pool-park-handshake"; "promise-double-fulfil" ]

let suite =
  ( "check",
    [
      Alcotest.test_case "sched: lost update found" `Quick
        test_sched_finds_lost_update;
      Alcotest.test_case "sched: rmw increments pass" `Quick
        test_sched_rmw_increments_pass;
      Alcotest.test_case "sched: independent ops collapse to 1 run" `Quick
        test_sched_independent_ops_one_run;
      Alcotest.test_case "sched: deadlock reported" `Quick
        test_sched_reports_deadlock;
      Alcotest.test_case "sched: thread exception reported" `Quick
        test_sched_reports_thread_exception;
    ]
    @ protocol_tests
    @ [
        Alcotest.test_case "mutant: lost wakeup dies as deadlock" `Quick
          test_lost_wakeup_is_deadlock;
        Alcotest.test_case "mutant: fiber resume-before-park deadlocks" `Quick
          test_fiber_resume_before_park_is_deadlock;
        Alcotest.test_case "regression: park handshake is wakeup-safe" `Quick
          test_handshake_regression;
        Alcotest.test_case "mutant: trace is readable" `Quick
          test_mutant_trace_readable;
        Alcotest.test_case "race: unordered writes flagged" `Quick
          test_race_unordered_writes_flagged;
        Alcotest.test_case "race: rmws never race" `Quick
          test_race_rmw_never_races;
        Alcotest.test_case "race: acquire orders later write" `Quick
          test_race_ordered_via_acquire;
        Alcotest.test_case "race: distinct cells independent" `Quick
          test_race_distinct_cells_no_race;
        Alcotest.test_case "race: lazy-blackhole trace flagged" `Quick
          test_race_flags_lazy_mutant_trace;
        Alcotest.test_case "race: CAS protocols race-free" `Quick
          test_race_clean_on_cas_protocols;
      ] )
