(** Tests for the Chase–Lev work-stealing deque and the FIFO queue. *)

open Repro_deque

let test_case = Alcotest.test_case
let check = Alcotest.check

(* ---------------- Ws_deque, owner-side semantics ---------------- *)

let deque_lifo_pop () =
  let q = Ws_deque.create () in
  List.iter (Ws_deque.push q) [ 1; 2; 3 ];
  check Alcotest.(option int) "pop newest" (Some 3) (Ws_deque.pop q);
  check Alcotest.(option int) "pop next" (Some 2) (Ws_deque.pop q);
  check Alcotest.(option int) "pop last" (Some 1) (Ws_deque.pop q);
  check Alcotest.(option int) "pop empty" None (Ws_deque.pop q)

let deque_fifo_steal () =
  let q = Ws_deque.create () in
  List.iter (Ws_deque.push q) [ 1; 2; 3 ];
  check Alcotest.(option int) "steal oldest" (Some 1) (Ws_deque.steal q);
  check Alcotest.(option int) "steal next" (Some 2) (Ws_deque.steal q);
  check Alcotest.(option int) "steal last" (Some 3) (Ws_deque.steal q);
  check Alcotest.(option int) "steal empty" None (Ws_deque.steal q)

let deque_mixed () =
  let q = Ws_deque.create () in
  List.iter (Ws_deque.push q) [ 1; 2; 3; 4 ];
  check Alcotest.(option int) "steal 1" (Some 1) (Ws_deque.steal q);
  check Alcotest.(option int) "pop 4" (Some 4) (Ws_deque.pop q);
  check Alcotest.int "size" 2 (Ws_deque.size q);
  check Alcotest.(option int) "steal 2" (Some 2) (Ws_deque.steal q);
  check Alcotest.(option int) "pop 3" (Some 3) (Ws_deque.pop q);
  check Alcotest.bool "empty" true (Ws_deque.is_empty q)

let deque_grows () =
  let q = Ws_deque.create () in
  (* push far beyond the initial capacity (16) *)
  for i = 1 to 1000 do
    Ws_deque.push q i
  done;
  check Alcotest.int "size" 1000 (Ws_deque.size q);
  for i = 1000 downto 501 do
    check Alcotest.(option int) "pop order" (Some i) (Ws_deque.pop q)
  done;
  for i = 1 to 500 do
    check Alcotest.(option int) "steal order" (Some i) (Ws_deque.steal q)
  done;
  check Alcotest.bool "empty" true (Ws_deque.is_empty q)

let deque_drain () =
  let q = Ws_deque.create () in
  List.iter (Ws_deque.push q) [ 1; 2; 3 ];
  check Alcotest.(list int) "drain pops LIFO" [ 3; 2; 1 ] (Ws_deque.drain q)

(* Model test: a random sequence of owner pushes/pops, steals and
   drains must behave like a reference double-ended queue. *)
let deque_qcheck_model =
  QCheck.Test.make ~name:"ws_deque matches reference deque model" ~count:500
    QCheck.(list (int_range 0 3))
    (fun ops ->
      let q = Ws_deque.create () in
      let model = ref ([] : int list) (* oldest first *) in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              incr next;
              Ws_deque.push q !next;
              model := !model @ [ !next ]
          | 1 -> (
              let got = Ws_deque.pop q in
              match List.rev !model with
              | [] -> if got <> None then ok := false
              | newest :: rest_rev ->
                  if got <> Some newest then ok := false;
                  model := List.rev rest_rev)
          | 2 -> (
              let got = Ws_deque.steal q in
              match !model with
              | [] -> if got <> None then ok := false
              | oldest :: rest ->
                  if got <> Some oldest then ok := false;
                  model := rest)
          | _ ->
              (* drain pops everything newest-first *)
              if Ws_deque.drain q <> List.rev !model then ok := false;
              model := [])
        ops;
      !ok && Ws_deque.size q = List.length !model)

(* The single-threaded model above cannot see steal/pop races, so also
   drive random owner operations against a real stealing domain: every
   pushed value is consumed exactly once (owner pops + steals + nothing
   left), and the stolen sequence is strictly increasing (steals take
   from the FIFO top, which only moves forward). *)
let deque_qcheck_concurrent_model =
  QCheck.Test.make
    ~name:"ws_deque random owner ops vs a real stealing domain" ~count:100
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let q = Ws_deque.create () in
      let stop = Atomic.make false in
      let stealer =
        Domain.spawn (fun () ->
            let acc = ref [] in
            while not (Atomic.get stop) do
              match Ws_deque.steal q with
              | Some v -> acc := v :: !acc
              | None -> Domain.cpu_relax ()
            done;
            let rec sweep () =
              match Ws_deque.steal q with
              | Some v ->
                  acc := v :: !acc;
                  sweep ()
              | None -> ()
            in
            sweep ();
            List.rev !acc)
      in
      let next = ref 0 in
      let popped = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 ->
              (* biased toward pushes so the stealer has something to race *)
              incr next;
              Ws_deque.push q !next
          | _ -> (
              match Ws_deque.pop q with
              | Some v -> popped := v :: !popped
              | None -> ()))
        ops;
      let rec drain_own () =
        match Ws_deque.pop q with
        | Some v ->
            popped := v :: !popped;
            drain_own ()
        | None -> ()
      in
      drain_own ();
      Atomic.set stop true;
      let stolen = Domain.join stealer in
      let consumed = List.sort compare (!popped @ stolen) in
      let rec strictly_increasing = function
        | a :: (b :: _ as t) -> a < b && strictly_increasing t
        | _ -> true
      in
      consumed = List.init !next (fun i -> i + 1)
      && strictly_increasing stolen)

(* Concurrency stress: one owner domain pushing/popping, several
   stealer domains.  Every pushed element must be consumed exactly
   once. *)
let deque_domains_stress () =
  let q = Ws_deque.create () in
  let n = 20_000 in
  let nstealers = 3 in
  let stolen = Array.make nstealers 0 in
  let stop = Atomic.make false in
  let stealers =
    List.init nstealers (fun i ->
        Domain.spawn (fun () ->
            let count = ref 0 in
            while not (Atomic.get stop) do
              match Ws_deque.steal q with
              | Some _ -> incr count
              | None -> Domain.cpu_relax ()
            done;
            (* final sweep *)
            let rec sweep () =
              match Ws_deque.steal q with
              | Some _ ->
                  incr count;
                  sweep ()
              | None -> ()
            in
            sweep ();
            stolen.(i) <- !count))
  in
  let popped = ref 0 in
  for i = 1 to n do
    Ws_deque.push q i;
    if i mod 3 = 0 then
      match Ws_deque.pop q with Some _ -> incr popped | None -> ()
  done;
  (* drain own side *)
  let rec drain () =
    match Ws_deque.pop q with
    | Some _ ->
        incr popped;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join stealers;
  let total = !popped + Array.fold_left ( + ) 0 stolen in
  check Alcotest.int "every element consumed exactly once" n total

(* Stronger race test, repeated: one owner pushing/popping against 3
   stealer domains, with a per-element consumption count — asserting
   not merely conservation of cardinality but that no element is lost
   AND none is duplicated.  Repeated >= 20 times so the interleaving
   space is actually explored. *)
let deque_domains_race_repeated () =
  let iterations = 20 in
  let n = 2_000 in
  let nstealers = 3 in
  for _iter = 1 to iterations do
    let q = Ws_deque.create () in
    (* seen.(i) counts consumptions of element i, across all domains *)
    let seen = Array.init n (fun _ -> Atomic.make 0) in
    let consume i = Atomic.incr seen.(i) in
    let stop = Atomic.make false in
    let stealers =
      List.init nstealers (fun _ ->
          Domain.spawn (fun () ->
              while not (Atomic.get stop) do
                match Ws_deque.steal q with
                | Some i -> consume i
                | None -> Domain.cpu_relax ()
              done;
              let rec sweep () =
                match Ws_deque.steal q with
                | Some i ->
                    consume i;
                    sweep ()
                | None -> ()
              in
              sweep ()))
    in
    for i = 0 to n - 1 do
      Ws_deque.push q i;
      if i land 3 = 0 then
        match Ws_deque.pop q with Some j -> consume j | None -> ()
    done;
    let rec drain_own () =
      match Ws_deque.pop q with
      | Some j ->
          consume j;
          drain_own ()
      | None -> ()
    in
    drain_own ();
    Atomic.set stop true;
    List.iter Domain.join stealers;
    Array.iteri
      (fun i c ->
        let c = Atomic.get c in
        if c <> 1 then
          Alcotest.failf "iteration %d: element %d consumed %d times (lost=%b)"
            _iter i c (c = 0))
      seen
  done

(* ---------------- Spsc_queue ---------------- *)

let fifo_order () =
  let q = Spsc_queue.create () in
  List.iter (Spsc_queue.enqueue q) [ 1; 2; 3 ];
  check Alcotest.(option int) "peek" (Some 1) (Spsc_queue.peek q);
  check Alcotest.(option int) "dequeue 1" (Some 1) (Spsc_queue.dequeue q);
  check Alcotest.(option int) "dequeue 2" (Some 2) (Spsc_queue.dequeue q);
  Spsc_queue.enqueue q 4;
  check Alcotest.(list int) "to_list" [ 3; 4 ] (Spsc_queue.to_list q);
  check Alcotest.int "length" 2 (Spsc_queue.length q);
  Spsc_queue.clear q;
  check Alcotest.bool "cleared" true (Spsc_queue.is_empty q)

let fifo_qcheck =
  QCheck.Test.make ~name:"spsc_queue preserves FIFO order" ~count:300
    QCheck.(small_list small_nat)
    (fun xs ->
      let q = Spsc_queue.create () in
      List.iter (Spsc_queue.enqueue q) xs;
      let rec drain acc =
        match Spsc_queue.dequeue q with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = xs)

let suite =
  ( "deque",
    [
      test_case "owner pop is LIFO" `Quick deque_lifo_pop;
      test_case "steal is FIFO" `Quick deque_fifo_steal;
      test_case "mixed pop/steal" `Quick deque_mixed;
      test_case "grows beyond initial capacity" `Quick deque_grows;
      test_case "drain" `Quick deque_drain;
      QCheck_alcotest.to_alcotest deque_qcheck_model;
      QCheck_alcotest.to_alcotest deque_qcheck_concurrent_model;
      test_case "multi-domain stress" `Slow deque_domains_stress;
      test_case "multi-domain race, exactly-once x20" `Slow
        deque_domains_race_repeated;
      test_case "spsc fifo order" `Quick fifo_order;
      QCheck_alcotest.to_alcotest fifo_qcheck;
    ] )
