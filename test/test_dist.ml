(** Tests for the multi-process executor (lib/dist): wire-protocol
    codec properties, fd-level framing and error paths over a real
    socketpair, and end-to-end multi-process runs checked bit-for-bit
    against the sequential references.

    The multi-process cases re-execute this very test binary as the
    worker ([Test_main] installs [Repro_dist.Worker.maybe_run] before
    Alcotest sees argv). *)

open Alcotest
module Wire = Repro_dist.Wire
module Shm = Repro_dist.Shm_ring
module Farm = Repro_dist.Farm
module Workload = Repro_dist.Workload
module Measure = Repro_dist.Measure
module Timeline = Repro_dist.Timeline

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Pure codec                                                          *)

let encoded_len ~packet_bytes len =
  len + (Wire.header_bytes * Wire.packets_of_len ~packet_bytes len)

let payload_of_len len = String.init len (fun i -> Char.chr (i land 0xff))

(* Edge sizes around the packet boundary, including the empty message
   and multi-packet messages. *)
let codec_edge_cases () =
  List.iter
    (fun packet_bytes ->
      List.iter
        (fun len ->
          if len >= 0 then begin
            let s = payload_of_len len in
            let enc = Wire.encode ~packet_bytes s in
            check int
              (Printf.sprintf "encoded length (pb=%d len=%d)" packet_bytes len)
              (encoded_len ~packet_bytes len)
              (String.length enc);
            let dec, pos = Wire.decode enc ~pos:0 in
            check string "payload round-trips" s dec;
            check int "consumed to the end" (String.length enc) pos
          end)
        [
          0; 1; packet_bytes - 1; packet_bytes; packet_bytes + 1;
          2 * packet_bytes; (3 * packet_bytes) + 7;
        ])
    [ 1; 7; 64 ]

let codec_qcheck =
  QCheck.Test.make ~name:"wire codec round-trips arbitrary payloads"
    ~count:200
    QCheck.(pair (int_range 1 80) (string_of_size Gen.(0 -- 300)))
    (fun (packet_bytes, s) ->
      let enc = Wire.encode ~packet_bytes s in
      let dec, pos = Wire.decode enc ~pos:0 in
      dec = s
      && pos = String.length enc
      && String.length enc = encoded_len ~packet_bytes (String.length s))

(* Back-to-back messages decode in sequence from one stream. *)
let codec_stream () =
  let packet_bytes = 9 in
  let msgs = [ ""; "a"; payload_of_len 25; payload_of_len 9; "end" ] in
  let stream = String.concat "" (List.map (Wire.encode ~packet_bytes) msgs) in
  let pos = ref 0 in
  List.iter
    (fun expected ->
      let dec, pos' = Wire.decode stream ~pos:!pos in
      check string "message in stream order" expected dec;
      pos := pos')
    msgs;
  check int "stream fully consumed" (String.length stream) !pos

(* Every strict prefix of an encoded message is an incomplete frame. *)
let codec_truncation () =
  let packet_bytes = 7 in
  let enc = Wire.encode ~packet_bytes (payload_of_len 20) in
  for cut = 0 to String.length enc - 1 do
    let prefix = String.sub enc 0 cut in
    match Wire.decode prefix ~pos:0 with
    | _ -> failf "prefix of %d bytes decoded" cut
    | exception Wire.Truncated _ -> ()
  done

let codec_rejects_bad_flags () =
  (* length 0, flags with an unknown bit set *)
  let bad = "\x00\x00\x00\x00\x02" in
  match Wire.decode bad ~pos:0 with
  | _ -> fail "unknown flags accepted"
  | exception Wire.Protocol_error _ -> ()

let packets_of_len_cases () =
  check int "empty message still needs a packet" 1
    (Wire.packets_of_len ~packet_bytes:8 0);
  check int "exact fit" 1 (Wire.packets_of_len ~packet_bytes:8 8);
  check int "one byte over" 2 (Wire.packets_of_len ~packet_bytes:8 9);
  check int "many" 4 (Wire.packets_of_len ~packet_bytes:8 25)

(* ------------------------------------------------------------------ *)
(* Framing over a real socketpair                                      *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      close a;
      close b)
    (fun () -> f a b)

let conn_of fd = Wire.create ~read_fd:fd ~write_fd:fd ()

(* Small and empty messages fit the kernel buffer, so one thread can
   send then receive; the counters on both ends must agree with the
   framing arithmetic. *)
let fd_roundtrip_counters () =
  with_socketpair (fun a b ->
      let ca = conn_of a and cb = conn_of b in
      Wire.send ca "";
      Wire.send ca "hello";
      check string "empty message" "" (Wire.recv cb);
      check string "payload" "hello" (Wire.recv cb);
      let sa = Wire.counters ca and sb = Wire.counters cb in
      check int "msgs sent" 2 sa.Wire.msgs_sent;
      check int "msgs recv" 2 sb.Wire.msgs_recv;
      check int "packets sent" 2 sa.Wire.packets_sent;
      check int "bytes include headers"
        (5 + (2 * Wire.header_bytes))
        sa.Wire.bytes_sent;
      check int "both ends agree on bytes" sa.Wire.bytes_sent
        sb.Wire.bytes_recv)

(* A ~200 KB message spans many packets and overflows the socketpair
   buffer, so the receiver runs on its own domain. *)
let fd_multi_packet () =
  with_socketpair (fun a b ->
      let packet_bytes = 4096 in
      let ca = Wire.create ~packet_bytes ~read_fd:a ~write_fd:a ()
      and cb = Wire.create ~packet_bytes ~read_fd:b ~write_fd:b () in
      let big = payload_of_len 200_000 in
      let reader = Domain.spawn (fun () -> Wire.recv cb) in
      Wire.send ca big;
      let got = Domain.join reader in
      check bool "multi-packet payload intact" true (String.equal big got);
      let sa = Wire.counters ca in
      check int "packet count"
        (Wire.packets_of_len ~packet_bytes 200_000)
        sa.Wire.packets_sent;
      check int "wire bytes"
        (encoded_len ~packet_bytes 200_000)
        sa.Wire.bytes_sent)

let fd_clean_eof () =
  with_socketpair (fun a b ->
      let ca = conn_of a in
      Unix.close b;
      match Wire.recv ca with
      | _ -> fail "recv succeeded on a closed peer"
      | exception End_of_file -> ())

let fd_truncated_frame () =
  with_socketpair (fun a b ->
      let ca = conn_of a in
      (* half a header, then the peer dies *)
      let n = Unix.write_substring b "\x00\x00\x01" 0 3 in
      check int "partial header written" 3 n;
      Unix.close b;
      match Wire.recv ca with
      | _ -> fail "recv decoded a truncated frame"
      | exception Wire.Truncated _ -> ())

let fd_dead_peer_send () =
  with_socketpair (fun a b ->
      let ca = conn_of a in
      Unix.close b;
      match Wire.send ca "anyone there?" with
      | () -> fail "send succeeded with no peer"
      | exception Wire.Dead_peer _ -> ())

(* ------------------------------------------------------------------ *)
(* SPSC ring model (the distilled handshake behind the shm frames)     *)

module Plain_word = struct
  type t = int ref

  let load r = !r
  let store r v = r := v
end

module Spsc = Shm.Spsc (Plain_word)

let spsc_of_cap cap =
  let slots = Array.make cap 0 in
  Spsc.create ~cap ~tail:(ref 0) ~head:(ref 0) ~get:(Array.get slots)
    ~set:(Array.set slots)

(* Random push/pop interleavings agree with a Queue reference at every
   step, for capacities small enough that the cursors lap the ring many
   times (wrap-around at every [mod cap] point). *)
let spsc_qcheck =
  QCheck.Test.make ~name:"spsc ring agrees with a queue reference" ~count:400
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(0 -- 120) bool))
    (fun (cap, ops) ->
      let r = spsc_of_cap cap in
      let q = Queue.create () in
      let counter = ref 0 in
      List.for_all
        (fun push ->
          if push then begin
            incr counter;
            let ok = Spsc.try_push r !counter in
            let fits = Queue.length q < cap in
            if fits then Queue.add !counter q;
            ok = fits && Spsc.length r = Queue.length q
          end
          else
            match (Spsc.try_pop r, Queue.take_opt q) with
            | Some v, Some w -> v = w && Spsc.length r = Queue.length q
            | None, None -> true
            | _ -> false)
        ops)

(* Deterministic lapping: a full-empty cycle at every offset, for a
   cursor range that crosses several multiples of the capacity. *)
let spsc_wrap_around () =
  List.iter
    (fun cap ->
      let r = spsc_of_cap cap in
      for base = 0 to 8 * cap do
        for i = 0 to cap - 1 do
          check bool "push into non-full ring" true
            (Spsc.try_push r ((base * cap) + i))
        done;
        check bool "full ring refuses" false (Spsc.try_push r (-1));
        check int "full length" cap (Spsc.length r);
        for i = 0 to cap - 1 do
          check (option int) "pop in FIFO order"
            (Some ((base * cap) + i))
            (Spsc.try_pop r)
        done;
        check (option int) "empty ring refuses" None (Spsc.try_pop r)
      done)
    [ 1; 2; 3; 7 ]

(* ------------------------------------------------------------------ *)
(* Shared-memory ring transport (in-process, both sides mapped)        *)

let with_shm_pair ?(ring_bytes = 4096) ?(doorbell = false) f =
  let path = Shm.create_segment ~ring_bytes () in
  Fun.protect
    ~finally:(fun () -> Shm.unlink_segment path)
    (fun () ->
      if doorbell then begin
        let da, db = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let a = Shm.attach ~path ~side:`A ~doorbell:da () in
        let b = Shm.attach ~path ~side:`B ~doorbell:db () in
        Fun.protect
          ~finally:(fun () ->
            Shm.close a;
            Shm.close b)
          (fun () -> f a b)
      end
      else
        let a = Shm.attach ~path ~side:`A () in
        let b = Shm.attach ~path ~side:`B () in
        f a b)

(* Byte messages round-trip in both directions through one segment;
   the counters account for every frame header and padding byte. *)
let shm_roundtrip_counters () =
  with_shm_pair (fun a b ->
      let sizes = [ 0; 1; 7; 8; 9; 100; 1000; 2500 ] in
      List.iter
        (fun len ->
          let s = payload_of_len len in
          Shm.send a s;
          check string
            (Printf.sprintf "a->b payload of %d bytes" len)
            s (Shm.recv b);
          Shm.send b s;
          check string
            (Printf.sprintf "b->a payload of %d bytes" len)
            s (Shm.recv a))
        sizes;
      let total = List.fold_left ( + ) 0 sizes in
      let ca = Shm.counters a and cb = Shm.counters b in
      check int "msgs sent" (List.length sizes) ca.Wire.msgs_sent;
      check int "msgs recv" (List.length sizes) ca.Wire.msgs_recv;
      check int "payload bytes, no headers" total ca.Wire.payload_bytes_sent;
      check int "payload bytes received" total cb.Wire.payload_bytes_recv;
      check int "both ends agree on wire bytes" ca.Wire.bytes_sent
        cb.Wire.bytes_recv;
      check bool "frame headers counted" true (ca.Wire.bytes_sent > total);
      check int "bytes plane is not zero-copy" 0 ca.Wire.zero_copy_bytes_sent)

(* Float payloads cross the ring bit-for-bit — including NaN payload
   bits, signed zero, infinities and denormals — and are counted on
   the zero-copy plane. *)
let float_specials =
  [|
    0.0;
    -0.0;
    infinity;
    neg_infinity;
    nan;
    Int64.float_of_bits 0x7ff800000000beefL;
    (* quiet NaN with a payload *)
    Int64.float_of_bits 0xfff8000000000001L;
    (* negative quiet NaN *)
    4.9e-324;
    (* smallest denormal *)
    Float.max_float;
    Float.pi;
    -1.5e308;
  |]

let check_bits name expected got =
  check int "float arrays same length" (Array.length expected)
    (Array.length got);
  Array.iteri
    (fun i x ->
      check int
        (Printf.sprintf "%s: element %d bit pattern" name i)
        (Workload.float_bits x)
        (Workload.float_bits got.(i)))
    expected

let shm_float_identity () =
  with_shm_pair (fun a b ->
      Shm.send_floats a float_specials;
      check_bits "shm specials" float_specials
        (Shm.recv_floats b ~len:(Array.length float_specials));
      let big = Array.init 300 (fun i -> Float.of_int i *. 0.1) in
      Shm.send_floats a big;
      check_bits "shm 300 floats" big (Shm.recv_floats b ~len:300);
      let ca = Shm.counters a and cb = Shm.counters b in
      let bytes = 8 * (Array.length float_specials + 300) in
      check int "zero-copy bytes sent" bytes ca.Wire.zero_copy_bytes_sent;
      check int "zero-copy bytes received" bytes cb.Wire.zero_copy_bytes_recv;
      check int "floats also count as payload" bytes
        ca.Wire.payload_bytes_sent)

(* The socketpair float plane must be bit-identical too (raw LE bits,
   not text), even though it copies through the scratch buffer. *)
let sock_float_identity () =
  with_socketpair (fun a b ->
      let ca = conn_of a and cb = conn_of b in
      Wire.send_floats ca float_specials;
      check_bits "sock specials" float_specials
        (Wire.recv_floats cb ~len:(Array.length float_specials));
      check int "sock float plane is copied, not zero-copy" 0
        (Wire.counters ca).Wire.zero_copy_bytes_sent;
      check int "payload bytes counted"
        (8 * Array.length float_specials)
        (Wire.counters ca).Wire.payload_bytes_sent)

(* A message far larger than the ring streams through it: the producer
   blocks on the full ring (backpressure) until the consumer frees
   frames; the doorbell wakes the sleeping consumer mid-stream.  A
   second domain plays the producer. *)
let shm_backpressure_doorbell () =
  with_shm_pair ~ring_bytes:4096 ~doorbell:true (fun a b ->
      let big = payload_of_len 100_000 in
      let msgs = 20 in
      let producer =
        Domain.spawn (fun () ->
            for _ = 1 to msgs do
              Shm.send a big
            done)
      in
      for i = 1 to msgs do
        let got = Shm.recv b in
        check bool
          (Printf.sprintf "streamed message %d intact" i)
          true (String.equal big got)
      done;
      Domain.join producer;
      check bool "no spurious extra input" false (Shm.input_ready b))

(* Doorbell EOF: the peer vanishing is End_of_file at a message
   boundary, after any in-flight data has been drained. *)
let shm_peer_gone () =
  let path = Shm.create_segment ~ring_bytes:4096 () in
  Fun.protect
    ~finally:(fun () -> Shm.unlink_segment path)
    (fun () ->
      let da, db = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let a = Shm.attach ~path ~side:`A ~doorbell:da () in
      let b = Shm.attach ~path ~side:`B ~doorbell:db () in
      Shm.send a "parting gift";
      Shm.close a;
      (* the ring still holds the last message; EOF only after it *)
      check string "in-flight message survives the close" "parting gift"
        (Shm.recv b);
      (match Shm.recv b with
      | _ -> fail "recv succeeded with a dead peer and an empty ring"
      | exception End_of_file -> ());
      Shm.close b)

(* ------------------------------------------------------------------ *)
(* End-to-end multi-process runs                                       *)

let quick_run ?(procs = 2) ?trace ?transport (module W : Workload.S) =
  Farm.run ?trace ?transport ~procs ~size:W.quick_size (module W)

(* Exactly-once ledger: the coordinator schedules each task once, the
   workers between them execute each task once, and the combined
   result matches the sequential reference. *)
let exactly_once_ledger () =
  let module W = Workload.Sumeuler in
  let o = quick_run (module W) in
  check int "checksum" (W.reference ~size:W.quick_size) o.Farm.result;
  check int "two PEs reported" 2 (Array.length o.Farm.reports);
  check int "every task scheduled exactly once" o.Farm.tasks o.Farm.schedules;
  let executed =
    Array.fold_left
      (fun acc (r : Farm.pe_report) ->
        acc + r.Farm.stats.Repro_dist.Message.tasks_executed)
      0 o.Farm.reports
  in
  check int "every task executed exactly once" o.Farm.tasks executed;
  Array.iter
    (fun (r : Farm.pe_report) ->
      let s = r.Farm.stats in
      (* The coordinator also counts the final [Stats] frame, which
         the worker's snapshot (taken before sending it) cannot. *)
      check bool "coordinator saw at least the worker's counted traffic" true
        (r.Farm.co.Wire.bytes_recv >= s.Repro_dist.Message.bytes_sent
        && s.Repro_dist.Message.bytes_sent > 0);
      check bool "private heap allocated" true
        (s.Repro_dist.Message.gc_minor_words > 0.))
    o.Farm.reports;
  check bool "demand scheduling fished" true (o.Farm.fishes > 0);
  check bool "work was timed" true (o.Farm.work_ns > 0)

let all_workloads_match_reference () =
  List.iter
    (fun (module W : Workload.S) ->
      let o = quick_run (module W) in
      check int (W.name ^ " matches sequential reference")
        (W.reference ~size:W.quick_size)
        o.Farm.result)
    Workload.all

(* The same five workloads over the shared-memory rings, with three
   PEs so the peer-to-peer mesh is non-trivial.  Exactly-once still
   holds, and the workloads that declare a float codec must move their
   results on the zero-copy plane. *)
let all_workloads_match_reference_shm () =
  List.iter
    (fun (module W : Workload.S) ->
      let o = quick_run ~procs:3 ~transport:Farm.Shm (module W) in
      check int
        (W.name ^ " matches sequential reference over shm")
        (W.reference ~size:W.quick_size)
        o.Farm.result;
      check int
        (W.name ^ ": every task scheduled exactly once")
        o.Farm.tasks o.Farm.schedules;
      let executed =
        Array.fold_left
          (fun acc (r : Farm.pe_report) ->
            acc + r.Farm.stats.Repro_dist.Message.tasks_executed)
          0 o.Farm.reports
      in
      check int
        (W.name ^ ": every task executed exactly once")
        o.Farm.tasks executed;
      let zero_copy =
        Array.fold_left
          (fun acc (r : Farm.pe_report) ->
            acc + r.Farm.stats.Repro_dist.Message.zero_copy_bytes_sent)
          0 o.Farm.reports
      in
      match W.result_blob with
      | Some _ ->
          check bool (W.name ^ ": results moved zero-copy") true (zero_copy > 0)
      | None -> check int (W.name ^ ": no zero-copy traffic") 0 zero_copy)
    Workload.all

let exactly_once_ledger_shm () =
  let module W = Workload.Sumeuler in
  let o = quick_run ~transport:Farm.Shm (module W) in
  check int "checksum over shm" (W.reference ~size:W.quick_size) o.Farm.result;
  check int "every task scheduled exactly once" o.Farm.tasks o.Farm.schedules;
  check bool "no coordinator no-works over shm" true (o.Farm.no_works = 0);
  check bool "steal accounting is consistent" true
    (o.Farm.stolen >= 0 && o.Farm.stolen <= o.Farm.tasks);
  let grants =
    Array.fold_left
      (fun acc (r : Farm.pe_report) ->
        acc + r.Farm.stats.Repro_dist.Message.grants_given)
      0 o.Farm.reports
  in
  (* a granted task can be granted onward before it runs, so grants
     bound the stolen count from above rather than matching it *)
  check bool "stolen tasks all came from grants" true (grants >= o.Farm.stolen)

let apsp_shm_pinned () =
  let module W = Workload.Apsp_w in
  List.iter
    (fun (procs, size) ->
      let o = Farm.run ~transport:Farm.Shm ~procs ~size (module W) in
      check int
        (Printf.sprintf "apsp over shm procs=%d size=%d" procs size)
        (W.reference ~size) o.Farm.result;
      check int "pinned rounds never steal" 0 o.Farm.stolen)
    [ (3, 17); (2, 1) ]

let farm_closures_shm () =
  let fs = List.map (fun x () -> x * 10) [ 1; 2; 3; 4; 5 ] in
  check (list int) "closure farm over shm" [ 10; 20; 30; 40; 50 ]
    (Farm.farm ~transport:Farm.Shm ~procs:2 fs)

(* Pinned rounds with awkward divisions: block count not a multiple of
   the PE count, and more PEs than rows. *)
let apsp_awkward_shapes () =
  let module W = Workload.Apsp_w in
  List.iter
    (fun (procs, size) ->
      let o = Farm.run ~procs ~size (module W) in
      check int
        (Printf.sprintf "apsp procs=%d size=%d" procs size)
        (W.reference ~size) o.Farm.result)
    [ (3, 17); (4, 3); (2, 1) ]

let more_procs_than_tasks () =
  let module W = Workload.Parfib in
  let o = Farm.run ~procs:5 ~size:12 (module W) in
  check int "parfib with idle PEs" (W.reference ~size:12) o.Farm.result

let farm_closures () =
  let captured = [ 3; 1; 4; 1; 5; 9 ] in
  let fs = List.map (fun x () -> (x, x * x)) captured in
  let got = Farm.farm ~procs:2 fs in
  check
    (list (pair int int))
    "closures ran remotely, results in order"
    (List.map (fun x -> (x, x * x)) captured)
    got

let rejects_bad_procs () =
  check_raises "procs = 0" (Invalid_argument "Farm.run: procs must be >= 1")
    (fun () ->
      ignore (Farm.run ~procs:0 ~size:10 (module Workload.Sumeuler)))

(* ------------------------------------------------------------------ *)
(* Timeline and measurement                                            *)

let trace_spans () =
  let o = quick_run ~trace:true (module Workload.Sumeuler) in
  let spans = Timeline.of_outcome o in
  check bool "spans recorded" true (spans <> []);
  let allowed = [ "schedule"; "wire"; "unpack"; "exec"; "pack" ] in
  List.iter
    (fun (s : Timeline.span) ->
      check bool ("known span name: " ^ s.Timeline.name) true
        (List.mem s.Timeline.name allowed);
      check bool "span is ordered" true (s.Timeline.t1_ns >= s.Timeline.t0_ns);
      check bool "track is coordinator or a PE" true
        (s.Timeline.track >= -1 && s.Timeline.track < o.Farm.procs))
    spans;
  List.iter
    (fun name ->
      check bool ("has a " ^ name ^ " span") true
        (List.exists (fun (s : Timeline.span) -> s.Timeline.name = name) spans))
    allowed;
  let json =
    Repro_util.Json_out.to_string (Timeline.to_chrome ~procs:o.Farm.procs spans)
  in
  check bool "chrome document" true (contains ~sub:"\"traceEvents\"" json);
  check bool "coordinator track named" true (contains ~sub:"coordinator" json);
  check bool "PE track named" true (contains ~sub:"PE 1" json)

let untraced_runs_have_no_spans () =
  let o = quick_run (module Workload.Parfib) in
  check (list reject) "no spans without ~trace" [] (Timeline.of_outcome o)

let measure_sweep_and_json () =
  let module W = Workload.Sumeuler in
  let ms =
    Measure.sweep ~repeats:1 ~procs_list:[ 1; 2 ] ~size:W.quick_size (module W)
  in
  check int "one row per process count" 2 (List.length ms);
  let base = List.hd ms in
  check (float 1e-9) "baseline speedup is 1" 1.0 base.Measure.speedup;
  List.iter
    (fun (m : Measure.measurement) ->
      check int "checksum stable across repeats"
        (W.reference ~size:W.quick_size)
        m.Measure.result;
      check int "per-PE rows" m.Measure.procs (Array.length m.Measure.per_pe);
      check bool "positive mean" true (m.Measure.mean_ns > 0.))
    ms;
  let doc =
    Measure.json_document
      ~header:
        (Repro_exec.Harness.env_header ~backend:"processes"
           ~transport:"socketpair" ())
      ms
  in
  let s = Repro_util.Json_out.to_string doc in
  check bool "schema id" true (contains ~sub:"repro/bench-dist/v1" s);
  check bool "backend recorded" true (contains ~sub:"\"processes\"" s);
  check bool "transport recorded" true (contains ~sub:"\"socketpair\"" s);
  check bool "per-PE counters present" true (contains ~sub:"\"per_pe\"" s)

let suite =
  ( "dist",
    [
      test_case "wire codec edge sizes" `Quick codec_edge_cases;
      QCheck_alcotest.to_alcotest codec_qcheck;
      test_case "wire codec message stream" `Quick codec_stream;
      test_case "wire codec rejects every truncation" `Quick codec_truncation;
      test_case "wire codec rejects unknown flags" `Quick
        codec_rejects_bad_flags;
      test_case "packets_of_len arithmetic" `Quick packets_of_len_cases;
      test_case "socketpair round trip and counters" `Quick
        fd_roundtrip_counters;
      test_case "socketpair multi-packet message" `Quick fd_multi_packet;
      test_case "clean EOF at a frame boundary" `Quick fd_clean_eof;
      test_case "EOF mid-frame is Truncated" `Quick fd_truncated_frame;
      test_case "send to a dead peer" `Quick fd_dead_peer_send;
      QCheck_alcotest.to_alcotest spsc_qcheck;
      test_case "spsc ring wrap-around at every offset" `Quick spsc_wrap_around;
      test_case "shm ring round trip and counters" `Quick shm_roundtrip_counters;
      test_case "shm float payloads are bit-identical" `Quick shm_float_identity;
      test_case "sock float payloads are bit-identical" `Quick
        sock_float_identity;
      test_case "shm backpressure and doorbell wake" `Quick
        shm_backpressure_doorbell;
      test_case "shm peer death drains then raises" `Quick shm_peer_gone;
      test_case "two-process exactly-once ledger" `Quick exactly_once_ledger;
      test_case "shm exactly-once ledger" `Quick exactly_once_ledger_shm;
      test_case "all workloads match sequential references" `Quick
        all_workloads_match_reference;
      test_case "all workloads match references over shm" `Quick
        all_workloads_match_reference_shm;
      test_case "apsp pinned rounds over shm" `Quick apsp_shm_pinned;
      test_case "closure farm over shm" `Quick farm_closures_shm;
      test_case "apsp awkward shapes" `Quick apsp_awkward_shapes;
      test_case "more PEs than tasks" `Quick more_procs_than_tasks;
      test_case "closure farm" `Quick farm_closures;
      test_case "rejects procs < 1" `Quick rejects_bad_procs;
      test_case "traced run emits timeline spans" `Quick trace_spans;
      test_case "untraced run has no spans" `Quick untraced_runs_have_no_spans;
      test_case "measure sweep and JSON document" `Quick measure_sweep_and_json;
    ] )
