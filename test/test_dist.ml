(** Tests for the multi-process executor (lib/dist): wire-protocol
    codec properties, fd-level framing and error paths over a real
    socketpair, and end-to-end multi-process runs checked bit-for-bit
    against the sequential references.

    The multi-process cases re-execute this very test binary as the
    worker ([Test_main] installs [Repro_dist.Worker.maybe_run] before
    Alcotest sees argv). *)

open Alcotest
module Wire = Repro_dist.Wire
module Farm = Repro_dist.Farm
module Workload = Repro_dist.Workload
module Measure = Repro_dist.Measure
module Timeline = Repro_dist.Timeline

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Pure codec                                                          *)

let encoded_len ~packet_bytes len =
  len + (Wire.header_bytes * Wire.packets_of_len ~packet_bytes len)

let payload_of_len len = String.init len (fun i -> Char.chr (i land 0xff))

(* Edge sizes around the packet boundary, including the empty message
   and multi-packet messages. *)
let codec_edge_cases () =
  List.iter
    (fun packet_bytes ->
      List.iter
        (fun len ->
          if len >= 0 then begin
            let s = payload_of_len len in
            let enc = Wire.encode ~packet_bytes s in
            check int
              (Printf.sprintf "encoded length (pb=%d len=%d)" packet_bytes len)
              (encoded_len ~packet_bytes len)
              (String.length enc);
            let dec, pos = Wire.decode enc ~pos:0 in
            check string "payload round-trips" s dec;
            check int "consumed to the end" (String.length enc) pos
          end)
        [
          0; 1; packet_bytes - 1; packet_bytes; packet_bytes + 1;
          2 * packet_bytes; (3 * packet_bytes) + 7;
        ])
    [ 1; 7; 64 ]

let codec_qcheck =
  QCheck.Test.make ~name:"wire codec round-trips arbitrary payloads"
    ~count:200
    QCheck.(pair (int_range 1 80) (string_of_size Gen.(0 -- 300)))
    (fun (packet_bytes, s) ->
      let enc = Wire.encode ~packet_bytes s in
      let dec, pos = Wire.decode enc ~pos:0 in
      dec = s
      && pos = String.length enc
      && String.length enc = encoded_len ~packet_bytes (String.length s))

(* Back-to-back messages decode in sequence from one stream. *)
let codec_stream () =
  let packet_bytes = 9 in
  let msgs = [ ""; "a"; payload_of_len 25; payload_of_len 9; "end" ] in
  let stream = String.concat "" (List.map (Wire.encode ~packet_bytes) msgs) in
  let pos = ref 0 in
  List.iter
    (fun expected ->
      let dec, pos' = Wire.decode stream ~pos:!pos in
      check string "message in stream order" expected dec;
      pos := pos')
    msgs;
  check int "stream fully consumed" (String.length stream) !pos

(* Every strict prefix of an encoded message is an incomplete frame. *)
let codec_truncation () =
  let packet_bytes = 7 in
  let enc = Wire.encode ~packet_bytes (payload_of_len 20) in
  for cut = 0 to String.length enc - 1 do
    let prefix = String.sub enc 0 cut in
    match Wire.decode prefix ~pos:0 with
    | _ -> failf "prefix of %d bytes decoded" cut
    | exception Wire.Truncated _ -> ()
  done

let codec_rejects_bad_flags () =
  (* length 0, flags with an unknown bit set *)
  let bad = "\x00\x00\x00\x00\x02" in
  match Wire.decode bad ~pos:0 with
  | _ -> fail "unknown flags accepted"
  | exception Wire.Protocol_error _ -> ()

let packets_of_len_cases () =
  check int "empty message still needs a packet" 1
    (Wire.packets_of_len ~packet_bytes:8 0);
  check int "exact fit" 1 (Wire.packets_of_len ~packet_bytes:8 8);
  check int "one byte over" 2 (Wire.packets_of_len ~packet_bytes:8 9);
  check int "many" 4 (Wire.packets_of_len ~packet_bytes:8 25)

(* ------------------------------------------------------------------ *)
(* Framing over a real socketpair                                      *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      close a;
      close b)
    (fun () -> f a b)

let conn_of fd = Wire.create ~read_fd:fd ~write_fd:fd ()

(* Small and empty messages fit the kernel buffer, so one thread can
   send then receive; the counters on both ends must agree with the
   framing arithmetic. *)
let fd_roundtrip_counters () =
  with_socketpair (fun a b ->
      let ca = conn_of a and cb = conn_of b in
      Wire.send ca "";
      Wire.send ca "hello";
      check string "empty message" "" (Wire.recv cb);
      check string "payload" "hello" (Wire.recv cb);
      let sa = Wire.counters ca and sb = Wire.counters cb in
      check int "msgs sent" 2 sa.Wire.msgs_sent;
      check int "msgs recv" 2 sb.Wire.msgs_recv;
      check int "packets sent" 2 sa.Wire.packets_sent;
      check int "bytes include headers"
        (5 + (2 * Wire.header_bytes))
        sa.Wire.bytes_sent;
      check int "both ends agree on bytes" sa.Wire.bytes_sent
        sb.Wire.bytes_recv)

(* A ~200 KB message spans many packets and overflows the socketpair
   buffer, so the receiver runs on its own domain. *)
let fd_multi_packet () =
  with_socketpair (fun a b ->
      let packet_bytes = 4096 in
      let ca = Wire.create ~packet_bytes ~read_fd:a ~write_fd:a ()
      and cb = Wire.create ~packet_bytes ~read_fd:b ~write_fd:b () in
      let big = payload_of_len 200_000 in
      let reader = Domain.spawn (fun () -> Wire.recv cb) in
      Wire.send ca big;
      let got = Domain.join reader in
      check bool "multi-packet payload intact" true (String.equal big got);
      let sa = Wire.counters ca in
      check int "packet count"
        (Wire.packets_of_len ~packet_bytes 200_000)
        sa.Wire.packets_sent;
      check int "wire bytes"
        (encoded_len ~packet_bytes 200_000)
        sa.Wire.bytes_sent)

let fd_clean_eof () =
  with_socketpair (fun a b ->
      let ca = conn_of a in
      Unix.close b;
      match Wire.recv ca with
      | _ -> fail "recv succeeded on a closed peer"
      | exception End_of_file -> ())

let fd_truncated_frame () =
  with_socketpair (fun a b ->
      let ca = conn_of a in
      (* half a header, then the peer dies *)
      let n = Unix.write_substring b "\x00\x00\x01" 0 3 in
      check int "partial header written" 3 n;
      Unix.close b;
      match Wire.recv ca with
      | _ -> fail "recv decoded a truncated frame"
      | exception Wire.Truncated _ -> ())

let fd_dead_peer_send () =
  with_socketpair (fun a b ->
      let ca = conn_of a in
      Unix.close b;
      match Wire.send ca "anyone there?" with
      | () -> fail "send succeeded with no peer"
      | exception Wire.Dead_peer _ -> ())

(* ------------------------------------------------------------------ *)
(* End-to-end multi-process runs                                       *)

let quick_run ?(procs = 2) ?trace (module W : Workload.S) =
  Farm.run ?trace ~procs ~size:W.quick_size (module W)

(* Exactly-once ledger: the coordinator schedules each task once, the
   workers between them execute each task once, and the combined
   result matches the sequential reference. *)
let exactly_once_ledger () =
  let module W = Workload.Sumeuler in
  let o = quick_run (module W) in
  check int "checksum" (W.reference ~size:W.quick_size) o.Farm.result;
  check int "two PEs reported" 2 (Array.length o.Farm.reports);
  check int "every task scheduled exactly once" o.Farm.tasks o.Farm.schedules;
  let executed =
    Array.fold_left
      (fun acc (r : Farm.pe_report) ->
        acc + r.Farm.stats.Repro_dist.Message.tasks_executed)
      0 o.Farm.reports
  in
  check int "every task executed exactly once" o.Farm.tasks executed;
  Array.iter
    (fun (r : Farm.pe_report) ->
      let s = r.Farm.stats in
      (* The coordinator also counts the final [Stats] frame, which
         the worker's snapshot (taken before sending it) cannot. *)
      check bool "coordinator saw at least the worker's counted traffic" true
        (r.Farm.co.Wire.bytes_recv >= s.Repro_dist.Message.bytes_sent
        && s.Repro_dist.Message.bytes_sent > 0);
      check bool "private heap allocated" true
        (s.Repro_dist.Message.gc_minor_words > 0.))
    o.Farm.reports;
  check bool "demand scheduling fished" true (o.Farm.fishes > 0);
  check bool "work was timed" true (o.Farm.work_ns > 0)

let all_workloads_match_reference () =
  List.iter
    (fun (module W : Workload.S) ->
      let o = quick_run (module W) in
      check int (W.name ^ " matches sequential reference")
        (W.reference ~size:W.quick_size)
        o.Farm.result)
    Workload.all

(* Pinned rounds with awkward divisions: block count not a multiple of
   the PE count, and more PEs than rows. *)
let apsp_awkward_shapes () =
  let module W = Workload.Apsp_w in
  List.iter
    (fun (procs, size) ->
      let o = Farm.run ~procs ~size (module W) in
      check int
        (Printf.sprintf "apsp procs=%d size=%d" procs size)
        (W.reference ~size) o.Farm.result)
    [ (3, 17); (4, 3); (2, 1) ]

let more_procs_than_tasks () =
  let module W = Workload.Parfib in
  let o = Farm.run ~procs:5 ~size:12 (module W) in
  check int "parfib with idle PEs" (W.reference ~size:12) o.Farm.result

let farm_closures () =
  let captured = [ 3; 1; 4; 1; 5; 9 ] in
  let fs = List.map (fun x () -> (x, x * x)) captured in
  let got = Farm.farm ~procs:2 fs in
  check
    (list (pair int int))
    "closures ran remotely, results in order"
    (List.map (fun x -> (x, x * x)) captured)
    got

let rejects_bad_procs () =
  check_raises "procs = 0" (Invalid_argument "Farm.run: procs must be >= 1")
    (fun () ->
      ignore (Farm.run ~procs:0 ~size:10 (module Workload.Sumeuler)))

(* ------------------------------------------------------------------ *)
(* Timeline and measurement                                            *)

let trace_spans () =
  let o = quick_run ~trace:true (module Workload.Sumeuler) in
  let spans = Timeline.of_outcome o in
  check bool "spans recorded" true (spans <> []);
  let allowed = [ "schedule"; "wire"; "unpack"; "exec"; "pack" ] in
  List.iter
    (fun (s : Timeline.span) ->
      check bool ("known span name: " ^ s.Timeline.name) true
        (List.mem s.Timeline.name allowed);
      check bool "span is ordered" true (s.Timeline.t1_ns >= s.Timeline.t0_ns);
      check bool "track is coordinator or a PE" true
        (s.Timeline.track >= -1 && s.Timeline.track < o.Farm.procs))
    spans;
  List.iter
    (fun name ->
      check bool ("has a " ^ name ^ " span") true
        (List.exists (fun (s : Timeline.span) -> s.Timeline.name = name) spans))
    allowed;
  let json =
    Repro_util.Json_out.to_string (Timeline.to_chrome ~procs:o.Farm.procs spans)
  in
  check bool "chrome document" true (contains ~sub:"\"traceEvents\"" json);
  check bool "coordinator track named" true (contains ~sub:"coordinator" json);
  check bool "PE track named" true (contains ~sub:"PE 1" json)

let untraced_runs_have_no_spans () =
  let o = quick_run (module Workload.Parfib) in
  check (list reject) "no spans without ~trace" [] (Timeline.of_outcome o)

let measure_sweep_and_json () =
  let module W = Workload.Sumeuler in
  let ms =
    Measure.sweep ~repeats:1 ~procs_list:[ 1; 2 ] ~size:W.quick_size (module W)
  in
  check int "one row per process count" 2 (List.length ms);
  let base = List.hd ms in
  check (float 1e-9) "baseline speedup is 1" 1.0 base.Measure.speedup;
  List.iter
    (fun (m : Measure.measurement) ->
      check int "checksum stable across repeats"
        (W.reference ~size:W.quick_size)
        m.Measure.result;
      check int "per-PE rows" m.Measure.procs (Array.length m.Measure.per_pe);
      check bool "positive mean" true (m.Measure.mean_ns > 0.))
    ms;
  let doc =
    Measure.json_document
      ~header:
        (Repro_exec.Harness.env_header ~backend:"processes"
           ~transport:"socketpair" ())
      ms
  in
  let s = Repro_util.Json_out.to_string doc in
  check bool "schema id" true (contains ~sub:"repro/bench-dist/v1" s);
  check bool "backend recorded" true (contains ~sub:"\"processes\"" s);
  check bool "transport recorded" true (contains ~sub:"\"socketpair\"" s);
  check bool "per-PE counters present" true (contains ~sub:"\"per_pe\"" s)

let suite =
  ( "dist",
    [
      test_case "wire codec edge sizes" `Quick codec_edge_cases;
      QCheck_alcotest.to_alcotest codec_qcheck;
      test_case "wire codec message stream" `Quick codec_stream;
      test_case "wire codec rejects every truncation" `Quick codec_truncation;
      test_case "wire codec rejects unknown flags" `Quick
        codec_rejects_bad_flags;
      test_case "packets_of_len arithmetic" `Quick packets_of_len_cases;
      test_case "socketpair round trip and counters" `Quick
        fd_roundtrip_counters;
      test_case "socketpair multi-packet message" `Quick fd_multi_packet;
      test_case "clean EOF at a frame boundary" `Quick fd_clean_eof;
      test_case "EOF mid-frame is Truncated" `Quick fd_truncated_frame;
      test_case "send to a dead peer" `Quick fd_dead_peer_send;
      test_case "two-process exactly-once ledger" `Quick exactly_once_ledger;
      test_case "all workloads match sequential references" `Quick
        all_workloads_match_reference;
      test_case "apsp awkward shapes" `Quick apsp_awkward_shapes;
      test_case "more PEs than tasks" `Quick more_procs_than_tasks;
      test_case "closure farm" `Quick farm_closures;
      test_case "rejects procs < 1" `Quick rejects_bad_procs;
      test_case "traced run emits timeline spans" `Quick trace_spans;
      test_case "untraced run has no spans" `Quick untraced_runs_have_no_spans;
      test_case "measure sweep and JSON document" `Quick measure_sweep_and_json;
    ] )
