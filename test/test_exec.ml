(** Tests for the real-hardware executor ([lib/exec]): pool/future
    semantics, strategy combinators, and — the acceptance gate —
    deterministic results for every wired workload at 1, 2 and 4
    domains. *)

module Pool = Repro_exec.Pool
module Future = Repro_exec.Future
module S = Repro_exec.Strategies
module Workload = Repro_exec.Workload
module Harness = Repro_exec.Harness

let test_case = Alcotest.test_case
let check = Alcotest.check

(* ---------------- pool + future basics ---------------- *)

let par_joins () =
  Pool.with_pool ~cores:2 (fun () ->
      let a, b = S.par (fun () -> 6 * 7) (fun () -> "ok") in
      check Alcotest.int "left" 42 a;
      check Alcotest.string "right" "ok" b)

let outside_pool_is_sequential () =
  (* no pool: sparks fizzle, force evaluates in place *)
  let trace = ref [] in
  let fut = Future.spark (fun () -> trace := `Spark :: !trace; 1) in
  check Alcotest.bool "not yet run" false (Future.is_done fut);
  let v = Future.force fut in
  check Alcotest.int "value" 1 v;
  check Alcotest.int "ran exactly once" 1 (List.length !trace);
  check Alcotest.int "force again is cached" 1 (Future.force fut)

let future_evaluated_once () =
  (* force the same future from many sparks racing across domains *)
  Pool.with_pool ~cores:4 (fun () ->
      let hits = Atomic.make 0 in
      let shared = Future.spark (fun () -> Atomic.fetch_and_add hits 1) in
      let forcers = List.init 16 (fun _ () -> Future.force shared) in
      let vs = S.par_list forcers in
      List.iter (fun v -> check Alcotest.int "same claim" 0 v) vs;
      check Alcotest.int "evaluated exactly once" 1 (Atomic.get hits))

let exceptions_propagate () =
  Pool.with_pool ~cores:2 (fun () ->
      let fut = Future.spark (fun () -> failwith "boom") in
      match Future.force fut with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check Alcotest.string "message" "boom" msg)

let par_list_order () =
  Pool.with_pool ~cores:4 (fun () ->
      let fs = List.init 100 (fun i () -> i * i) in
      let expect = List.init 100 (fun i -> i * i) in
      check Alcotest.(list int) "ordered" expect (S.par_list fs))

let par_chunked_covers () =
  Pool.with_pool ~cores:3 (fun () ->
      let xs = List.init 1000 (fun i -> i) in
      let sums =
        S.par_chunked ~split:`Round_robin ~chunks:7
          (List.fold_left ( + ) 0)
          xs
      in
      check Alcotest.int "total" (999 * 1000 / 2) (List.fold_left ( + ) 0 sums))

let par_range_covers () =
  Pool.with_pool ~cores:4 (fun () ->
      let total =
        S.par_range ~chunks:5 1 100
          (fun lo hi ->
            let s = ref 0 in
            for i = lo to hi do s := !s + i done;
            !s)
          ~combine:( + ) ~init:0
      in
      check Alcotest.int "1..100" 5050 total;
      check Alcotest.int "empty range" 0
        (S.par_range ~chunks:4 5 4 (fun _ _ -> 1) ~combine:( + ) ~init:0))

let nested_par () =
  Pool.with_pool ~cores:4 (fun () ->
      let rec tree depth =
        if depth = 0 then 1
        else
          let a, b =
            S.par (fun () -> tree (depth - 1)) (fun () -> tree (depth - 1))
          in
          a + b
      in
      check Alcotest.int "2^8 leaves" 256 (tree 8))

let pool_reusable_across_runs () =
  let p = Pool.create ~cores:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      for i = 1 to 5 do
        let v =
          Pool.run p (fun () ->
              List.fold_left ( + ) 0 (S.par_map (fun x -> x * i) [ 1; 2; 3 ]))
        in
        check Alcotest.int "run result" (6 * i) v
      done)

(* ---------------- strategy edge cases ---------------- *)

let par_chunked_edges () =
  Pool.with_pool ~cores:2 (fun () ->
      check
        Alcotest.(list (list int))
        "empty list -> no pieces" []
        (S.par_chunked ~chunks:4 (fun p -> p) []);
      let pieces = S.par_chunked ~chunks:10 (fun p -> p) [ 1; 2; 3 ] in
      check Alcotest.bool "chunks > length: no empty pieces" true
        (List.for_all (fun p -> p <> []) pieces);
      check
        Alcotest.(list int)
        "chunks > length: coverage in order" [ 1; 2; 3 ] (List.concat pieces);
      let xs = List.init 37 Fun.id in
      let flat split =
        List.concat (S.par_chunked ~split ~chunks:5 (fun p -> p) xs)
      in
      check Alcotest.(list int) "contiguous covers in order" xs (flat `Contiguous);
      check
        Alcotest.(list int)
        "round-robin covers as a permutation" xs
        (List.sort compare (flat `Round_robin));
      let sum = List.fold_left ( + ) 0 in
      check Alcotest.int "same totals under either split"
        (sum (S.par_chunked ~split:`Contiguous ~chunks:5 sum xs))
        (sum (S.par_chunked ~split:`Round_robin ~chunks:5 sum xs)))

let exception_propagates_across_domains_repeated () =
  (* Repeat with worker noise so the failing body is sometimes run by a
     stealing domain and sometimes in place — both must surface the
     exception at force, and a second force re-raises the cached one. *)
  Pool.with_pool ~cores:4 (fun () ->
      for i = 1 to 20 do
        let noise = List.init 8 (fun j -> Future.spark (fun () -> j * i)) in
        let bad =
          Future.spark (fun () -> if i >= 0 then failwith "crash" else 0)
        in
        (match Future.force bad with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure msg -> check Alcotest.string "message" "crash" msg);
        (match Future.force bad with
        | _ -> Alcotest.fail "expected cached Failure"
        | exception Failure _ -> ());
        List.iteri
          (fun j f -> check Alcotest.int "noise result" (j * i) (Future.force f))
          noise
      done)

(* ---------------- scheduler observability counters ---------------- *)

let events_ledger_balances () =
  let p = Pool.create ~cores:3 () in
  let xs = List.init 50 Fun.id in
  let v =
    Pool.run p (fun () ->
        List.fold_left ( + ) 0 (S.par_map (fun x -> x * x) xs))
  in
  Pool.shutdown p;
  let e = Pool.events p in
  check Alcotest.int "result" (List.fold_left (fun a x -> a + (x * x)) 0 xs) v;
  check Alcotest.int "one spark per element" 50 e.Pool.sparks_created;
  check Alcotest.int "created = run + fizzled" e.Pool.sparks_created
    (e.Pool.sparks_run + e.Pool.sparks_fizzled);
  check Alcotest.bool "steals counted within attempts" true
    (e.Pool.steals <= e.Pool.steal_attempts)

let events_ledger_balances_after_many_runs () =
  let p = Pool.create ~cores:4 () in
  for _ = 1 to 5 do
    ignore
      (Pool.run p (fun () ->
           S.par_range ~chunks:8 1 200
             (fun lo hi -> hi - lo)
             ~combine:( + ) ~init:0))
  done;
  Pool.shutdown p;
  let e = Pool.events p in
  check Alcotest.int "ledger balances over reuse" e.Pool.sparks_created
    (e.Pool.sparks_run + e.Pool.sparks_fizzled);
  check Alcotest.int "5 runs x 8 ranges" 40 e.Pool.sparks_created

(* ---------------- workload determinism at 1/2/4 domains ---------------- *)

let workload_deterministic (module W : Workload.S) () =
  let size = W.quick_size in
  let expect = W.reference ~size in
  List.iter
    (fun cores ->
      let got = Pool.with_pool ~cores (fun () -> W.run ~size ()) in
      check Alcotest.int
        (Printf.sprintf "%s size %d at %d domain(s) = reference" W.name size
           cores)
        expect got)
    [ 1; 2; 4 ]

let matmul_kernel_matches_mul_ref () =
  (* the exec row kernel must agree bit-for-bit with Matrix.mul_ref *)
  let module M = Repro_workloads.Matrix in
  let n = 24 in
  let a = M.random ~seed:11 n and b = M.random ~seed:23 n in
  let via_ref = Int64.to_int (Int64.bits_of_float (M.checksum (M.mul_ref a b))) in
  let via_exec = Workload.Matmul.reference ~size:n in
  check Alcotest.int "bitwise equal checksum" via_ref via_exec

let apsp_matches_floyd_warshall () =
  let module A = Repro_workloads.Apsp in
  let size = 32 in
  let expect =
    Int64.to_int (Int64.bits_of_float (A.checksum (A.floyd_warshall (A.graph size))))
  in
  let got = Pool.with_pool ~cores:3 (fun () -> Workload.Apsp_w.run ~size ()) in
  check Alcotest.int "parallel apsp = floyd_warshall" expect got

(* ---------------- harness ---------------- *)

let harness_sweep_shape () =
  let m = Workload.find "sumeuler" |> Option.get in
  let ms = Harness.sweep ~repeats:2 ~cores_list:[ 1; 2 ] ~size:500 m in
  check Alcotest.int "two rows" 2 (List.length ms);
  let base = List.hd ms in
  check (Alcotest.float 1e-9) "baseline speedup" 1.0 base.Harness.speedup;
  List.iter
    (fun (r : Harness.measurement) ->
      check Alcotest.int "same checksum" base.Harness.result r.Harness.result;
      check Alcotest.bool "positive time" true (r.Harness.mean_ns > 0.0);
      (* GC deltas are taken between two quick_stats, so they can
         never go backwards *)
      check Alcotest.bool "minor GCs non-negative" true
        (r.Harness.minor_collections >= 0);
      check Alcotest.bool "major GCs non-negative" true
        (r.Harness.major_collections >= 0);
      check Alcotest.bool "minor words non-negative" true
        (r.Harness.minor_words >= 0.0))
    ms

let core_counts () =
  check Alcotest.(list int) "8" [ 1; 2; 4; 8 ] (Harness.core_counts_up_to 8);
  check Alcotest.(list int) "6" [ 1; 2; 4; 6 ] (Harness.core_counts_up_to 6);
  check Alcotest.(list int) "1" [ 1 ] (Harness.core_counts_up_to 1)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let json_document_valid () =
  let m = Workload.find "parfib" |> Option.get in
  let ms = Harness.sweep ~repeats:1 ~cores_list:[ 1; 2 ] ~size:18 m in
  let s = Repro_util.Json_out.to_string (Harness.json_document ms) in
  check Alcotest.bool "mentions schema" true
    (contains ~sub:"repro/bench-exec/v1" s);
  check Alcotest.bool "has speedup field" true (contains ~sub:"\"speedup\"" s);
  check Alcotest.bool "one row per core count" true
    (contains ~sub:"\"cores\": 2" s);
  check Alcotest.bool "carries GC counters" true
    (contains ~sub:"\"gc_minor_collections\"" s)

let suite =
  let workload_cases =
    List.map
      (fun (module W : Workload.S) ->
        test_case
          (Printf.sprintf "workload %s deterministic at 1/2/4 domains" W.name)
          `Quick
          (workload_deterministic (module W)))
      Workload.all
  in
  ( "exec",
    [
      test_case "par joins" `Quick par_joins;
      test_case "sparks fizzle outside a pool" `Quick outside_pool_is_sequential;
      test_case "shared future evaluated once" `Quick future_evaluated_once;
      test_case "exceptions propagate through force" `Quick exceptions_propagate;
      test_case "par_list keeps order" `Quick par_list_order;
      test_case "par_chunked covers every element" `Quick par_chunked_covers;
      test_case "par_range covers and handles empty" `Quick par_range_covers;
      test_case "nested par" `Quick nested_par;
      test_case "pool reusable across runs" `Quick pool_reusable_across_runs;
      test_case "par_chunked edge cases" `Quick par_chunked_edges;
      test_case "exceptions propagate across domains x20" `Quick
        exception_propagates_across_domains_repeated;
      test_case "spark ledger: created = run + fizzled" `Quick
        events_ledger_balances;
      test_case "spark ledger balances across pool reuse" `Quick
        events_ledger_balances_after_many_runs;
      test_case "matmul kernel = mul_ref bitwise" `Quick
        matmul_kernel_matches_mul_ref;
      test_case "apsp = floyd_warshall bitwise" `Quick apsp_matches_floyd_warshall;
      test_case "harness sweep shape" `Quick harness_sweep_shape;
      test_case "core count ladder" `Quick core_counts;
      test_case "BENCH_exec json renders" `Quick json_document_valid;
    ]
    @ workload_cases )
