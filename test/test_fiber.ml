(** Tests for the effects-based fiber runtime ([lib/fiber]): promise
    semantics against a sequential model, fiber scheduling on 1..4
    domains, cancellation propagation, cross-domain resumes, and the
    100k-fiber smoke with its live-fiber high-water mark. *)

module Pool = Repro_exec.Pool
module Future = Repro_exec.Future
module Fiber = Repro_fiber.Fiber
module Promise = Repro_fiber.Promise

let test_case = Alcotest.test_case
let check = Alcotest.check

(* ---------------- basic running ---------------- *)

let run_returns () =
  let v = Fiber.run ~cores:2 (fun () -> 6 * 7) in
  check Alcotest.int "root value" 42 v

let spawn_join_tree () =
  let v =
    Fiber.run ~cores:2 (fun () ->
        let hs = List.init 10 (fun i -> Fiber.spawn (fun () -> i * i)) in
        List.fold_left (fun acc h -> acc + Fiber.join h) 0 hs)
  in
  check Alcotest.int "sum of squares" 285 v

let root_exception_propagates () =
  Alcotest.check_raises "root raise escapes run" Not_found (fun () ->
      Fiber.run ~cores:2 (fun () -> raise Not_found))

let child_exception_at_join () =
  Fiber.run ~cores:2 (fun () ->
      let h = Fiber.spawn (fun () : int -> raise Not_found) in
      match Fiber.join h with
      | _ -> Alcotest.fail "join returned despite the raise"
      | exception Not_found -> ())

let run_in_reuses_pool () =
  (* run_in on an existing pool, twice: the pool survives for reuse and
     its spark ledger still balances at shutdown *)
  let pool = Pool.create ~cores:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let a = Fiber.run_in pool (fun () -> Fiber.join (Fiber.spawn (fun () -> 1))) in
      let b = Fiber.run_in pool (fun () -> 2) in
      check Alcotest.int "first" 1 a;
      check Alcotest.int "second" 2 b);
  let e = Pool.events pool in
  check Alcotest.int "ledger balances"
    e.Pool.sparks_created
    (e.Pool.sparks_run + e.Pool.sparks_fizzled)

(* ---------------- promise semantics ---------------- *)

let await_after_fulfil () =
  let v =
    Fiber.run ~cores:1 (fun () ->
        let p = Promise.create () in
        Promise.fulfil p 7;
        Fiber.await p)
  in
  check Alcotest.int "already-fulfilled await" 7 v

let await_before_fulfil_one_domain () =
  (* cores:1 — the acceptance regression: fiber A parks on an
     unfulfilled promise; fiber B, multiplexed on the SAME domain, must
     still run (and fulfil it).  If parking wedged the domain this
     deadlocks. *)
  let v =
    Fiber.run ~cores:1 (fun () ->
        let p = Promise.create () in
        let a = Fiber.spawn (fun () -> Fiber.await p + 1) in
        let _b = Fiber.spawn (fun () -> Promise.fulfil p 41) in
        Fiber.join a)
  in
  check Alcotest.int "parked fiber resumed by sibling" 42 v

let broken_promise_raises () =
  Fiber.run ~cores:1 (fun () ->
      let p : int Promise.t = Promise.create () in
      let a =
        Fiber.spawn (fun () ->
            match Fiber.await p with
            | _ -> false
            | exception Not_found -> true)
      in
      let _ = Fiber.spawn (fun () -> Promise.break p Not_found) in
      check Alcotest.bool "await raised the break exn" true (Fiber.join a))

let multi_waiter () =
  let n = 16 in
  let total =
    Fiber.run ~cores:2 (fun () ->
        let p = Promise.create () in
        let hs = List.init n (fun _ -> Fiber.spawn (fun () -> Fiber.await p)) in
        Fiber.yield ();
        Promise.fulfil p 3;
        List.fold_left (fun acc h -> acc + Fiber.join h) 0 hs)
  in
  check Alcotest.int "every waiter woken with the value" (3 * n) total

let fulfil_exactly_once_racing_domains () =
  (* two fibers race try_fulfil from (up to) two domains; exactly one
     wins and a third fiber observes a single coherent value *)
  for _ = 1 to 50 do
    Fiber.run ~cores:2 (fun () ->
        let p = Promise.create () in
        let r1 = Fiber.spawn (fun () -> Promise.try_fulfil p 1) in
        let r2 = Fiber.spawn (fun () -> Promise.try_fulfil p 2) in
        let v = Fiber.await p in
        let w1 = Fiber.join r1 and w2 = Fiber.join r2 in
        check Alcotest.bool "exactly one fulfil wins" true (w1 <> w2);
        check Alcotest.bool "value from the winner" true
          ((v = 1 && w1) || (v = 2 && w2)))
  done

let waiter_callback_exactly_once () =
  (* registered waiters run exactly once even when racing resolvers *)
  for _ = 1 to 50 do
    let hits = Atomic.make 0 in
    Fiber.run ~cores:2 (fun () ->
        let p = Promise.create () in
        Promise.add_waiter p (fun () -> Atomic.incr hits);
        let a = Fiber.spawn (fun () -> ignore (Promise.try_fulfil p 1)) in
        let b = Fiber.spawn (fun () -> ignore (Promise.try_fulfil p 2)) in
        Fiber.join a;
        Fiber.join b);
    check Alcotest.int "callback ran once" 1 (Atomic.get hits)
  done

(* QCheck: promise vs a sequential model.  Ops are applied in order;
   the model tracks resolution state and expected callback count —
   callbacks fire exactly once, never before resolution, immediately
   when registered after it. *)
let promise_qcheck_model =
  QCheck.Test.make ~name:"promise matches sequential model" ~count:300
    QCheck.(small_list (option small_nat))
    (fun ops ->
      (* op = Some v: try_fulfil v; None: add_waiter *)
      let p = Promise.create () in
      let fired = ref 0 in
      let model_resolved = ref None in
      let model_fired = ref 0 in
      let model_pending = ref 0 in
      let ok = ref true in
      let expect b = if not b then ok := false in
      List.iter
        (fun op ->
          (match op with
          | Some v -> (
              let won = Promise.try_fulfil p v in
              match !model_resolved with
              | None ->
                  expect won;
                  model_resolved := Some v;
                  (* resolution releases every pending waiter *)
                  model_fired := !model_fired + !model_pending;
                  model_pending := 0
              | Some _ -> expect (not won))
          | None -> (
              Promise.add_waiter p (fun () -> incr fired);
              match !model_resolved with
              | None -> incr model_pending
              | Some _ -> incr model_fired));
          expect (!fired = !model_fired);
          match (Promise.peek p, !model_resolved) with
          | Some (Ok v), Some v' -> expect (v = v')
          | None, None -> ()
          | _ -> expect false)
        ops;
      !ok)

(* ---------------- scheduling ---------------- *)

let yield_interleaves_on_one_domain () =
  let log =
    Fiber.run ~cores:1 (fun () ->
        let log = ref [] in
        let worker tag () =
          for _ = 1 to 3 do
            log := tag :: !log;
            Fiber.yield ()
          done
        in
        let a = Fiber.spawn (worker "a") in
        let b = Fiber.spawn (worker "b") in
        Fiber.join a;
        Fiber.join b;
        List.rev !log)
  in
  (* both fibers share the single domain; yielding must alternate them
     rather than running one to completion *)
  check Alcotest.bool "a and b interleave" true
    (match log with
    | "a" :: "b" :: _ | "b" :: "a" :: _ -> true
    | _ -> false);
  check Alcotest.int "all six segments ran" 6 (List.length log)

let cross_domain_resume_x20 () =
  (* pin the awaiting fiber and the fulfilling fiber to different
     workers, 20 times: every resume crosses a domain boundary *)
  for i = 1 to 20 do
    let v =
      Fiber.run ~cores:2 (fun () ->
          let p = Promise.create () in
          let a = Fiber.spawn_on 0 (fun () -> Fiber.await p + i) in
          let _ = Fiber.spawn_on 1 (fun () -> Promise.fulfil p 100) in
          Fiber.join a)
    in
    check Alcotest.int "cross-domain resume" (100 + i) v
  done

let spawn_on_pins () =
  Fiber.run ~cores:2 (fun () ->
      let worker_of i =
        Fiber.join
          (Fiber.spawn_on i (fun () ->
               (* a yield forces a reschedule through the pinned inbox *)
               Fiber.yield ();
               match Pool.current () with
               | Some ctx -> Pool.ctx_id ctx
               | None -> -1))
      in
      check Alcotest.int "pinned to worker 0" 0 (worker_of 0);
      check Alcotest.int "pinned to worker 1" 1 (worker_of 1))

let sleep_elapses () =
  let t0 = Unix.gettimeofday () in
  Fiber.run ~cores:1 (fun () ->
      let a = Fiber.spawn (fun () -> Fiber.sleep 0.005) in
      let b = Fiber.spawn (fun () -> Fiber.sleep 0.001) in
      Fiber.join a;
      Fiber.join b);
  let dt = Unix.gettimeofday () -. t0 in
  check Alcotest.bool "at least the longest sleep elapsed" true (dt >= 0.005)

let force_future_inside_fiber () =
  let v =
    Fiber.run ~cores:2 (fun () ->
        let fut = Future.spark (fun () -> 6 * 7) in
        let h = Fiber.spawn (fun () -> Future.force fut) in
        Fiber.join h + Future.force fut)
  in
  check Alcotest.int "futures and fibers coexist" 84 v

(* ---------------- cancellation ---------------- *)

let cancel_parked_fiber () =
  Fiber.run ~cores:2 (fun () ->
      let p : int Promise.t = Promise.create () in
      let victim = Fiber.spawn (fun () -> Fiber.await p) in
      Fiber.yield ();
      (* victim is parked on a promise nobody will fulfil *)
      Fiber.cancel victim;
      (match Fiber.join victim with
      | _ -> Alcotest.fail "cancelled fiber returned a value"
      | exception Fiber.Cancelled -> ());
      check Alcotest.bool "marked cancelled" true (Fiber.is_cancelled victim);
      let st = Fiber.stats () in
      check Alcotest.bool "cancellation counted" true (st.Fiber.s_cancelled >= 1))

let cancel_idempotent () =
  Fiber.run ~cores:1 (fun () ->
      let p : int Promise.t = Promise.create () in
      let victim = Fiber.spawn (fun () -> Fiber.await p) in
      Fiber.yield ();
      Fiber.cancel victim;
      Fiber.cancel victim;
      match Fiber.join victim with
      | _ -> Alcotest.fail "cancelled fiber returned"
      | exception Fiber.Cancelled -> ())

let cancel_propagates_to_children () =
  Fiber.run ~cores:2 (fun () ->
      let gate : int Promise.t = Promise.create () in
      let grandchild_done = Atomic.make `Pending in
      let parent =
        Fiber.spawn (fun () ->
            let g =
              Fiber.spawn (fun () ->
                  match Fiber.await gate with
                  | _ -> Atomic.set grandchild_done `Value
                  | exception Fiber.Cancelled ->
                      Atomic.set grandchild_done `Cancelled;
                      raise Fiber.Cancelled)
            in
            Fiber.join g)
      in
      (* let the tree park *)
      Fiber.yield ();
      Fiber.sleep 0.002;
      Fiber.cancel parent;
      (match Fiber.join parent with
      | _ -> Alcotest.fail "cancelled parent returned"
      | exception Fiber.Cancelled -> ());
      (* drive until the grandchild observed its fate *)
      let rec settle n =
        if Atomic.get grandchild_done = `Pending && n > 0 then begin
          Fiber.sleep 0.001;
          settle (n - 1)
        end
      in
      settle 200;
      check Alcotest.bool "grandchild cancelled, not completed" true
        (Atomic.get grandchild_done = `Cancelled))

let cleanup_runs_on_cancel () =
  (* Fun.protect finalisers run when a parked fiber is discontinued *)
  Fiber.run ~cores:1 (fun () ->
      let p : int Promise.t = Promise.create () in
      let cleaned = ref false in
      let victim =
        Fiber.spawn (fun () ->
            Fun.protect
              ~finally:(fun () -> cleaned := true)
              (fun () -> Fiber.await p))
      in
      Fiber.yield ();
      Fiber.cancel victim;
      (match Fiber.join victim with
      | _ -> ()
      | exception Fiber.Cancelled -> ());
      check Alcotest.bool "finally ran" true !cleaned)

(* ---------------- scale ---------------- *)

let smoke_100k_fibers () =
  (* 100_000 concurrent fibers on 2 domains, all parked on one gate
     promise at the high-water point, then released.  Asserts
     completion, the high-water mark, and bounded bookkeeping (live
     back to 1 = just the root). *)
  let n = 100_000 in
  let total, st =
    Fiber.run ~cores:2 (fun () ->
        let gate = Promise.create () in
        let hs =
          List.init n (fun i ->
              Fiber.spawn (fun () ->
                  let v = Fiber.await gate in
                  v + (i land 1)))
        in
        Promise.fulfil gate 1;
        let total = List.fold_left (fun acc h -> acc + Fiber.join h) 0 hs in
        (total, Fiber.stats ()))
  in
  check Alcotest.int "all fibers completed with values" (n + (n / 2)) total;
  check Alcotest.bool "high-water saw the full population" true
    (st.Fiber.s_high_water >= n);
  check Alcotest.bool "bookkeeping drained (root + at most one straggler)" true
    (st.Fiber.s_live <= 2);
  check Alcotest.bool "completions counted" true (st.Fiber.s_completed >= n);
  check Alcotest.int "spawn accounting" (n + 1) st.Fiber.s_spawned

let suite =
  ( "fiber",
    [
      test_case "run returns the root value" `Quick run_returns;
      test_case "spawn/join fan-out" `Quick spawn_join_tree;
      test_case "root exception escapes run" `Quick root_exception_propagates;
      test_case "child exception surfaces at join" `Quick child_exception_at_join;
      test_case "run_in reuses a pool, ledger balances" `Quick run_in_reuses_pool;
      test_case "await after fulfil is immediate" `Quick await_after_fulfil;
      test_case "parked fiber frees its domain (cores=1)" `Quick
        await_before_fulfil_one_domain;
      test_case "broken promise raises at await" `Quick broken_promise_raises;
      test_case "multi-waiter: all woken with the value" `Quick multi_waiter;
      test_case "fulfil races: exactly one winner x50" `Quick
        fulfil_exactly_once_racing_domains;
      test_case "waiter callback exactly once x50" `Quick
        waiter_callback_exactly_once;
      QCheck_alcotest.to_alcotest promise_qcheck_model;
      test_case "yield interleaves fibers on one domain" `Quick
        yield_interleaves_on_one_domain;
      test_case "cross-domain resume x20" `Quick cross_domain_resume_x20;
      test_case "spawn_on pins across yields" `Quick spawn_on_pins;
      test_case "sleep parks without holding a domain" `Quick sleep_elapses;
      test_case "Future.force inside a fiber" `Quick force_future_inside_fiber;
      test_case "cancel wakes a parked fiber into Cancelled" `Quick
        cancel_parked_fiber;
      test_case "cancel is idempotent" `Quick cancel_idempotent;
      test_case "cancel propagates to grandchildren" `Quick
        cancel_propagates_to_children;
      test_case "Fun.protect cleanup runs on cancel" `Quick cleanup_runs_on_cancel;
      test_case "100k fibers on 2 domains with high-water mark" `Slow
        smoke_100k_fibers;
    ] )
