(** Test runner: aggregates every suite. *)

let () =
  Alcotest.run "repro"
    [
      Test_util.suite;
      Test_deque.suite;
      Test_exec.suite;
      Test_check.suite;
      Test_sim.suite;
      Test_heap.suite;
      Test_rts.suite;
      Test_gph.suite;
      Test_eden.suite;
      Test_skeletons.suite;
      Test_workloads.suite;
      Test_extensions.suite;
      Test_extras.suite;
      Test_eventlog.suite;
      Test_gum.suite;
      Test_experiments.suite;
      Test_analysis.suite;
      Test_tracer.suite;
    ]
