(** Test runner: aggregates every suite.

    The distributed-executor tests re-execute this binary as their
    worker processes, so the worker hook must run before Alcotest
    parses argv. *)

let () = Repro_dist.Worker.maybe_run Sys.argv

let () =
  Alcotest.run "repro"
    [
      Test_util.suite;
      Test_deque.suite;
      Test_exec.suite;
      Test_check.suite;
      Test_sim.suite;
      Test_heap.suite;
      Test_rts.suite;
      Test_gph.suite;
      Test_eden.suite;
      Test_skeletons.suite;
      Test_workloads.suite;
      Test_extensions.suite;
      Test_extras.suite;
      Test_eventlog.suite;
      Test_gum.suite;
      Test_experiments.suite;
      Test_fiber.suite;
      Test_analysis.suite;
      Test_tracer.suite;
      Test_metrics.suite;
      Test_dist.suite;
    ]
