(** Tests for the live metrics layer ([lib/metrics]): HDR histogram
    error bounds and merge laws, sharded-counter exactness under real
    domains, snapshot algebra, OpenMetrics export/validation, the
    sampler loop, health detectors, and the dist piggyback path (the
    2-PE case re-executes this test binary as the worker, like
    [Test_dist]). *)

module Hdr = Repro_metrics.Hdr
module M = Repro_metrics.Metrics
module Export = Repro_metrics.Export
module Health = Repro_metrics.Health
module Sampler = Repro_metrics.Sampler
module Json = Repro_util.Json_out

let test_case = Alcotest.test_case
let check = Alcotest.check

(* ---------------- HDR bucket geometry ---------------- *)

let sb = Hdr.default_sub_bits

let hdr_geometry () =
  (* values below 2^(sub_bits+1) are exact: one bucket per value *)
  for v = 0 to (2 lsl sb) - 1 do
    let i = Hdr.index_of ~sub_bits:sb v in
    check Alcotest.int "small lower bound" v (Hdr.lower_bound ~sub_bits:sb i);
    check Alcotest.int "small upper bound" v (Hdr.upper_bound ~sub_bits:sb i)
  done;
  (* every value lands inside its bucket, with bounded relative width *)
  List.iter
    (fun v ->
      let i = Hdr.index_of ~sub_bits:sb v in
      let lo = Hdr.lower_bound ~sub_bits:sb i
      and hi = Hdr.upper_bound ~sub_bits:sb i in
      check Alcotest.bool
        (Printf.sprintf "v=%d in [%d,%d]" v lo hi)
        true
        (lo <= v && v <= hi);
      check Alcotest.bool
        (Printf.sprintf "width bound at %d" v)
        true
        (hi - lo + 1 <= max 1 (v / (1 lsl sb))))
    [ 64; 65; 1_000; 123_456; 1_000_000_000; max_int / 2; max_int ];
  (* negatives clamp to bucket 0 *)
  check Alcotest.int "negative clamps" 0 (Hdr.index_of ~sub_bits:sb (-5))

(* Quantile estimates from bucket midpoints stay within the advertised
   relative error of the exact rank statistic. *)
let hdr_quantile_qcheck =
  QCheck.Test.make ~name:"hdr quantile within relative error bound" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 120) (int_range 0 1_000_000)) (int_range 0 100))
    (fun (xs, qpct) ->
      let q = float_of_int qpct /. 100. in
      let h = Hdr.Local.create () in
      List.iter (Hdr.Local.observe h) xs;
      let s = Hdr.Local.snapshot h in
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let exact = float_of_int (List.nth sorted (rank - 1)) in
      let est = Hdr.quantile s q in
      Float.abs (est -. exact) <= (exact /. float_of_int (1 lsl sb)) +. 1.)

(* Count and sum are exact regardless of bucketing, so the mean is too. *)
let hdr_mean_exact =
  QCheck.Test.make ~name:"hdr mean is exact" ~count:200
    QCheck.(list_of_size Gen.(1 -- 80) (int_range 0 1_000_000_000))
    (fun xs ->
      let h = Hdr.Local.create () in
      List.iter (Hdr.Local.observe h) xs;
      let s = Hdr.Local.snapshot h in
      s.Hdr.count = List.length xs
      && s.Hdr.sum = List.fold_left ( + ) 0 xs
      && s.Hdr.min_v = List.fold_left min max_int xs
      && s.Hdr.max_v = List.fold_left max min_int xs
      && Hdr.mean s = float_of_int s.Hdr.sum /. float_of_int s.Hdr.count)

(* The sharding identity the registry relies on: observing a stream
   split across two histograms and merging the snapshots is exactly the
   snapshot of the whole stream. *)
let hdr_merge_qcheck =
  QCheck.Test.make ~name:"merge of shards = merge of streams" ~count:300
    QCheck.(list (pair bool (int_range 0 2_000_000_000)))
    (fun xs ->
      let a = Hdr.Local.create ()
      and b = Hdr.Local.create ()
      and whole = Hdr.Local.create () in
      List.iter
        (fun (left, v) ->
          Hdr.Local.observe (if left then a else b) v;
          Hdr.Local.observe whole v)
        xs;
      Hdr.merge (Hdr.Local.snapshot a) (Hdr.Local.snapshot b)
      = Hdr.Local.snapshot whole)

let hdr_json_roundtrip =
  QCheck.Test.make ~name:"hdr snapshot json round-trips" ~count:200
    QCheck.(list_of_size Gen.(1 -- 60) (int_range 0 1_000_000_000))
    (fun xs ->
      let h = Hdr.Local.create () in
      List.iter (Hdr.Local.observe h) xs;
      let s = Hdr.Local.snapshot h in
      Hdr.of_json (Hdr.to_json s) = s)

(* ---------------- registry: shards, gauges, snapshots ---------------- *)

let sharded_counter_exact () =
  let reg = M.create () in
  let c = M.counter ~registry:reg ~labels:[ ("worker", "x") ] "repro_test_hits_total" in
  let h = M.histogram ~registry:reg "repro_test_lat_ns" in
  let body () =
    for i = 1 to 50_000 do
      M.incr c;
      if i <= 1_000 then M.observe h i
    done
  in
  let ds = Array.init 4 (fun _ -> Domain.spawn body) in
  Array.iter Domain.join ds;
  M.add c 7;
  let snap = M.snapshot ~registry:reg () in
  check (Alcotest.float 0.) "counter exact across 4 domains" 200_007.
    (M.total snap "repro_test_hits_total");
  let hs = M.hist_total snap "repro_test_lat_ns" in
  check Alcotest.int "histogram count exact" 4_000 hs.Hdr.count;
  check Alcotest.int "histogram sum exact" (4 * 500_500) hs.Hdr.sum;
  check Alcotest.int "histogram min" 1 hs.Hdr.min_v;
  check Alcotest.int "histogram max" 1_000 hs.Hdr.max_v

let gauge_last_write_wins () =
  let reg = M.create () in
  let g = M.gauge ~registry:reg "repro_test_depth" in
  M.set_gauge g 1.5;
  M.set_gauge g 2.5;
  check (Alcotest.float 0.) "last write" 2.5
    (M.total (M.snapshot ~registry:reg ()) "repro_test_depth")

let disabled_registry_records_nothing () =
  let reg = M.create ~enabled:false () in
  let c = M.counter ~registry:reg "repro_test_off_total" in
  let h = M.histogram ~registry:reg "repro_test_off_ns" in
  for i = 1 to 100 do
    M.incr c;
    M.observe h i
  done;
  let snap = M.snapshot ~registry:reg () in
  check (Alcotest.float 0.) "counter stays 0" 0. (M.total snap "repro_test_off_total");
  check Alcotest.int "histogram stays empty" 0 (M.hist_total snap "repro_test_off_ns").Hdr.count

let collector_retirement () =
  let reg = M.create () in
  let live = ref 41 in
  let col =
    M.add_collector ~registry:reg ~name:"t" (fun () ->
        [ M.c_sample "repro_test_col_total" (float_of_int !live) ])
  in
  incr live;
  check (Alcotest.float 0.) "collector polled" 42.
    (M.total (M.snapshot ~registry:reg ()) "repro_test_col_total");
  M.remove_collector ~registry:reg col;
  live := 1_000;
  (* final value was folded into the retired set at removal time *)
  check (Alcotest.float 0.) "retired total survives" 42.
    (M.total (M.snapshot ~registry:reg ()) "repro_test_col_total")

(* Snapshot merge is associative: integer-valued floats add exactly and
   the canonical key order is first-appearance on both sides. *)
let merge_associative_qcheck =
  let mk (ni, li, v) =
    M.c_sample
      ~labels:(if li = 0 then [] else [ ("w", string_of_int li) ])
      (Printf.sprintf "repro_t%d_total" ni)
      (float_of_int v)
  in
  let sample_gen = QCheck.(triple (int_range 0 2) (int_range 0 2) (int_range 0 1000)) in
  QCheck.Test.make ~name:"snapshot merge is associative" ~count:300
    QCheck.(triple (small_list sample_gen) (small_list sample_gen) (small_list sample_gen))
    (fun (a, b, c) ->
      let s l = { M.taken_ns = 0; elapsed_ns = 0; samples = List.map mk l } in
      M.merge (M.merge (s a) (s b)) (s c) = M.merge (s a) (M.merge (s b) (s c)))

let relabel_and_find () =
  let s =
    {
      M.taken_ns = 0;
      elapsed_ns = 0;
      samples =
        [
          M.c_sample ~labels:[ ("worker", "0") ] "repro_test_a_total" 3.;
          M.c_sample ~labels:[ ("pe", "9"); ("worker", "1") ] "repro_test_a_total" 4.;
        ];
    }
  in
  let r = M.relabel ("pe", "2") s in
  (* added on the first sample, overridden on the second *)
  check Alcotest.bool "added" true
    (Option.is_some (M.find ~labels:[ ("pe", "2"); ("worker", "0") ] r "repro_test_a_total"));
  check Alcotest.bool "overridden" true
    (Option.is_some (M.find ~labels:[ ("pe", "2"); ("worker", "1") ] r "repro_test_a_total"));
  check (Alcotest.float 0.) "total unchanged" 7. (M.total r "repro_test_a_total")

(* ---------------- exporters ---------------- *)

let golden_snapshot () =
  let h = Hdr.Local.create () in
  List.iter (Hdr.Local.observe h) [ 1; 2; 3 ];
  {
    M.taken_ns = 0;
    elapsed_ns = 0;
    samples =
      [
        M.c_sample ~help:"Requests handled." ~labels:[ ("worker", "0") ] "repro_req_total" 3.;
        M.g_sample ~help:"Queue depth." "repro_depth" 2.5;
        M.h_sample ~help:"Latency." "repro_lat_ns" (Hdr.Local.snapshot h);
      ];
  }

let openmetrics_golden () =
  let expected =
    String.concat "\n"
      [
        "# HELP repro_req Requests handled.";
        "# TYPE repro_req counter";
        "repro_req_total{worker=\"0\"} 3";
        "# HELP repro_depth Queue depth.";
        "# TYPE repro_depth gauge";
        "repro_depth 2.5";
        "# HELP repro_lat_ns Latency.";
        "# TYPE repro_lat_ns histogram";
        "repro_lat_ns_bucket{le=\"1\"} 1";
        "repro_lat_ns_bucket{le=\"2\"} 2";
        "repro_lat_ns_bucket{le=\"3\"} 3";
        "repro_lat_ns_bucket{le=\"+Inf\"} 3";
        "repro_lat_ns_sum 6";
        "repro_lat_ns_count 3";
        "# EOF";
        "";
      ]
  in
  check Alcotest.string "openmetrics text" expected (Export.openmetrics (golden_snapshot ()))

let openmetrics_validator_accepts () =
  (match Export.validate_openmetrics (Export.openmetrics (golden_snapshot ())) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "golden rejected: %s" e);
  (* the live default registry (GC collector et al.) also exports clean *)
  match Export.validate_openmetrics (Export.openmetrics (M.snapshot ())) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default registry export rejected: %s" e

let openmetrics_validator_rejects () =
  List.iter
    (fun (what, text) ->
      match Export.validate_openmetrics text with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted %s" what)
    [
      ("sample without a TYPE declaration", "repro_x_total 1\n# EOF\n");
      ( "counter sample without _total suffix",
        "# TYPE repro_x counter\nrepro_x 1\n# EOF\n" );
      ("non-numeric value", "# TYPE repro_x gauge\nrepro_x abc\n# EOF\n");
      ("missing # EOF terminator", "# TYPE repro_x gauge\nrepro_x 1\n");
      ("text after # EOF", "# TYPE repro_x gauge\nrepro_x 1\n# EOF\nrepro_x 2\n");
    ]

let series_json_roundtrip () =
  let reg = M.create () in
  let c = M.counter ~registry:reg ~labels:[ ("worker", "0") ] "repro_test_rt_total" in
  let h = M.histogram ~registry:reg "repro_test_rt_ns" in
  M.incr c;
  List.iter (M.observe h) [ 5; 500; 50_000 ];
  let s1 = M.snapshot ~registry:reg () in
  M.add c 9;
  let s2 = M.snapshot ~registry:reg () in
  let j = Export.series_to_json ~meta:[ ("command", Json.Str "test") ] [ s1; s2 ] in
  check Alcotest.bool "series round-trips" true (Export.series_of_json j = [ s1; s2 ]);
  (* the single-snapshot codec underneath round-trips too *)
  check Alcotest.bool "snapshot round-trips" true
    (M.snapshot_of_json (M.snapshot_to_json s2) = s2)

(* ---------------- sampler ---------------- *)

let sampler_collects_series () =
  let reg = M.create () in
  let c = M.counter ~registry:reg "repro_test_tick_total" in
  let ticks = Atomic.make 0 in
  let sm =
    Sampler.start ~registry:reg ~interval_ms:15
      ~on_sample:(fun series -> Atomic.set ticks (List.length series))
      ()
  in
  M.incr c;
  Unix.sleepf 0.08;
  let series = Sampler.stop sm in
  check Alcotest.bool "several snapshots" true (List.length series >= 2);
  check Alcotest.bool "on_sample saw the series grow" true (Atomic.get ticks >= 1);
  let ts = List.map (fun s -> s.M.taken_ns) series in
  check Alcotest.bool "oldest first" true (List.sort compare ts = ts);
  check (Alcotest.float 0.) "final snapshot has the counter" 1.
    (M.total (List.nth series (List.length series - 1)) "repro_test_tick_total");
  (* stop is idempotent *)
  check Alcotest.int "stop again returns the same series" (List.length series)
    (List.length (Sampler.stop sm))

(* ---------------- health detectors ---------------- *)

let hsnap ?(elapsed_ns = 10_000_000_000) kvs =
  {
    M.taken_ns = 0;
    elapsed_ns;
    samples = List.map (fun (n, v) -> M.c_sample n v) kvs;
  }

let verdict rule vs =
  match List.find_opt (fun (v : Health.verdict) -> v.rule = rule) vs with
  | Some v -> v
  | None -> Alcotest.failf "no verdict for %s" rule

let health_rule name ~trigger ~clear () =
  let fire = Health.evaluate (hsnap trigger) in
  check Alcotest.bool (name ^ " triggers") true (verdict name fire).Health.triggered;
  check Alcotest.int "strict exit code" 3 (Health.exit_code fire);
  let ok = Health.evaluate (hsnap clear) in
  check Alcotest.bool (name ^ " clears") false (verdict name ok).Health.triggered

let health_steal_storm =
  health_rule "steal-failure-storm"
    ~trigger:
      [
        ("repro_steal_attempts_total", 10_000.);
        ("repro_steals_total", 100.);
        ("repro_pool_parks_total", 1.);
      ]
    ~clear:
      [
        ("repro_steal_attempts_total", 10_000.);
        ("repro_steals_total", 1_000.);
        ("repro_pool_parks_total", 1.);
      ]

let health_storm_vs_famine () =
  (* same terrible failure ratio, but the workers are parking: famine,
     not a storm — the attempts/park guard keeps it quiet *)
  let vs =
    Health.evaluate
      (hsnap
         [
           ("repro_steal_attempts_total", 10_000.);
           ("repro_steals_total", 0.);
           ("repro_pool_parks_total", 100.);
         ])
  in
  check Alcotest.bool "parking famine is not a storm" false
    (verdict "steal-failure-storm" vs).Health.triggered

let health_fizzle =
  health_rule "spark-fizzle-ratio"
    ~trigger:
      [ ("repro_pool_sparks_created_total", 2_048.); ("repro_pool_sparks_fizzled_total", 2_000.) ]
    ~clear:
      [ ("repro_pool_sparks_created_total", 2_048.); ("repro_pool_sparks_fizzled_total", 1_024.) ]

let health_fizzle_below_min () =
  (* 100% fizzle on a tiny run is noise, not a verdict *)
  let vs =
    Health.evaluate
      (hsnap
         [
           ("repro_pool_sparks_created_total", 512.);
           ("repro_pool_sparks_fizzled_total", 512.);
         ])
  in
  check Alcotest.bool "below min_created" false
    (verdict "spark-fizzle-ratio" vs).Health.triggered

let health_backpressure =
  health_rule "ring-backpressure-stall"
    ~trigger:
      [ ("repro_ring_backpressure_waits_total", 1_024.); ("repro_wire_msgs_sent_total", 100.) ]
    ~clear:
      [ ("repro_ring_backpressure_waits_total", 1_024.); ("repro_wire_msgs_sent_total", 1_000.) ]

let health_gc =
  health_rule "gc-pause-budget"
    ~trigger:[ ("repro_gc_minor_collections", 3_000_000.) ] (* 300k/s over 10s *)
    ~clear:[ ("repro_gc_minor_collections", 1_000_000.) ]

let health_gc_short_run () =
  (* the same rate over a run shorter than gc_min_elapsed_s is ignored *)
  let vs =
    Health.evaluate
      (hsnap ~elapsed_ns:10_000_000 [ ("repro_gc_minor_collections", 10_000. ) ])
  in
  check Alcotest.bool "short run ignored" false
    (verdict "gc-pause-budget" vs).Health.triggered

let health_fiber_leak =
  health_rule "fiber-leak"
    ~trigger:[ ("repro_fiber_spawned_total", 100.); ("repro_fiber_live", 3.) ]
    ~clear:[ ("repro_fiber_spawned_total", 100.); ("repro_fiber_live", 0.) ]

let health_fiber_leak_needs_fibers () =
  (* no fibers were ever spawned: a stray live total alone stays quiet *)
  let vs = Health.evaluate (hsnap [ ("repro_fiber_live", 1.) ]) in
  check Alcotest.bool "no spawns, no leak verdict" false
    (verdict "fiber-leak" vs).Health.triggered

let health_clean_exit () =
  check Alcotest.int "clean snapshot exits 0" 0
    (Health.exit_code (Health.evaluate (hsnap [])))

(* ---------------- integration: pool and dist ---------------- *)

let pool_counters_retire () =
  let before = M.total (M.snapshot ()) "repro_pool_sparks_created_total" in
  Repro_exec.Pool.with_pool ~cores:2 (fun () ->
      let fs = List.init 64 (fun i -> Repro_exec.Future.spark (fun () -> i * i)) in
      let total = List.fold_left (fun acc f -> acc + Repro_exec.Future.force f) 0 fs in
      check Alcotest.int "work is correct" 85_344 total);
  let snap = M.snapshot () in
  (* the pool is gone, but its retired counters survive in the default
     registry *)
  check Alcotest.bool "sparks_created retired" true
    (M.total snap "repro_pool_sparks_created_total" >= before +. 64.);
  check Alcotest.bool "busy time accounted" true
    (List.exists (fun s -> s.M.s_name = "repro_pool_busy_ns_total") snap.M.samples);
  check Alcotest.bool "forces counted" true (M.total snap "repro_future_forces_total" >= 64.)

let dist_piggyback_2pe () =
  let module W = Repro_dist.Workload.Sumeuler in
  let o = Repro_dist.Farm.run ~procs:2 ~size:W.quick_size (module W) in
  check Alcotest.int "checksum still right" (W.reference ~size:W.quick_size)
    o.Repro_dist.Farm.result;
  let m = o.Repro_dist.Farm.merged_metrics in
  let pes =
    List.sort_uniq compare
      (List.filter_map (fun s -> List.assoc_opt "pe" s.M.s_labels) m.M.samples)
  in
  check (Alcotest.list Alcotest.string) "every PE and the coordinator contributed"
    [ "0"; "1"; "coord" ] pes;
  check Alcotest.bool "farm-wide wire traffic" true
    (M.total m "repro_wire_msgs_sent_total" > 0.);
  (* per-PE series survive the relabel + merge *)
  List.iter
    (fun pe ->
      check Alcotest.bool
        (Printf.sprintf "pe=%s kept its own wire counter" pe)
        true
        (List.exists
           (fun s ->
             s.M.s_name = "repro_wire_msgs_sent_total"
             && List.assoc_opt "pe" s.M.s_labels = Some pe)
           m.M.samples))
    [ "0"; "1" ];
  (* the merged farm view exports clean OpenMetrics *)
  match Export.validate_openmetrics (Export.openmetrics m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged export rejected: %s" e

let suite =
  ( "metrics",
    [
      test_case "hdr bucket geometry" `Quick hdr_geometry;
      QCheck_alcotest.to_alcotest hdr_quantile_qcheck;
      QCheck_alcotest.to_alcotest hdr_mean_exact;
      QCheck_alcotest.to_alcotest hdr_merge_qcheck;
      QCheck_alcotest.to_alcotest hdr_json_roundtrip;
      test_case "sharded counter exact across domains" `Quick sharded_counter_exact;
      test_case "gauge last write wins" `Quick gauge_last_write_wins;
      test_case "disabled registry records nothing" `Quick disabled_registry_records_nothing;
      test_case "collector retirement keeps totals" `Quick collector_retirement;
      QCheck_alcotest.to_alcotest merge_associative_qcheck;
      test_case "relabel and find" `Quick relabel_and_find;
      test_case "openmetrics golden" `Quick openmetrics_golden;
      test_case "openmetrics validator accepts" `Quick openmetrics_validator_accepts;
      test_case "openmetrics validator rejects" `Quick openmetrics_validator_rejects;
      test_case "series json round-trip" `Quick series_json_roundtrip;
      test_case "sampler collects a series" `Quick sampler_collects_series;
      test_case "health: steal storm" `Quick health_steal_storm;
      test_case "health: storm vs famine" `Quick health_storm_vs_famine;
      test_case "health: spark fizzle" `Quick health_fizzle;
      test_case "health: fizzle below min" `Quick health_fizzle_below_min;
      test_case "health: ring backpressure" `Quick health_backpressure;
      test_case "health: gc budget" `Quick health_gc;
      test_case "health: gc short run" `Quick health_gc_short_run;
      test_case "health: fiber leak" `Quick health_fiber_leak;
      test_case "health: fiber leak needs fibers" `Quick
        health_fiber_leak_needs_fibers;
      test_case "health: clean exit code" `Quick health_clean_exit;
      test_case "pool counters retire into registry" `Quick pool_counters_retire;
      test_case "dist 2-PE piggyback merge" `Quick dist_piggyback_2pe;
    ] )
