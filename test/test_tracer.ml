(** Tests for the hardware eventlog pipeline: tracer ring buffers,
    merge into [Repro_trace.Eventlog], Chrome trace-event export, the
    JSON parser it round-trips through, and the profile report. *)

module Tracer = Repro_exec.Tracer
module Pool = Repro_exec.Pool
module Profile = Repro_exec.Profile
module Eventlog = Repro_trace.Eventlog
module Chrome = Repro_trace.Chrome
module Json_in = Repro_util.Json_in
module Json_out = Repro_util.Json_out

let test_case = Alcotest.test_case
let check = Alcotest.check

(* ---------------- ring buffer semantics ---------------- *)

let wraparound_keeps_most_recent () =
  (* capacity 16, 100 events: the ring must hold exactly the last 16,
     in order, and account for the 84 overwritten ones *)
  let tr = Tracer.create ~capacity:16 ~gc_events:false ~ncaps:1 () in
  Tracer.enable tr;
  let b = Tracer.buffer tr 0 in
  for i = 0 to 99 do
    Tracer.record b Tracer.Steal_attempt ~arg:i
  done;
  Tracer.disable tr;
  check Alcotest.int "recorded caps at capacity" 16 (Tracer.recorded tr);
  check Alcotest.(array int) "dropped oldest 84" [| 84 |] (Tracer.dropped tr);
  let args =
    List.filter_map
      (fun (_, e) ->
        match e with
        | Eventlog.Steal_attempt { victim; _ } -> Some victim
        | _ -> None)
      (Eventlog.events (Tracer.to_eventlog tr))
  in
  check Alcotest.(list int) "last 16 sequence numbers survive, in order"
    (List.init 16 (fun i -> 84 + i))
    args

let disabled_records_nothing () =
  let tr = Tracer.create ~capacity:16 ~gc_events:false ~ncaps:2 () in
  let b = Tracer.buffer tr 1 in
  Tracer.record b Tracer.Spark_create ~arg:0;
  Tracer.enable tr;
  Tracer.disable tr;
  Tracer.record b Tracer.Spark_create ~arg:0;
  (* null_buffer swallows everything even while enabled *)
  Tracer.record Tracer.null_buffer Tracer.Spark_create ~arg:0;
  check Alcotest.int "nothing recorded" 0 (Tracer.recorded tr)

let merged_timestamps_monotone () =
  (* interleave writes into two rings; the merged log must be sorted *)
  let tr = Tracer.create ~capacity:64 ~gc_events:false ~ncaps:2 () in
  Tracer.enable tr;
  let b0 = Tracer.buffer tr 0 and b1 = Tracer.buffer tr 1 in
  for i = 0 to 49 do
    Tracer.record (if i mod 3 = 0 then b1 else b0) Tracer.Spark_create ~arg:i
  done;
  Tracer.disable tr;
  let times = List.map fst (Eventlog.events (Tracer.to_eventlog tr)) in
  check Alcotest.int "all events merged" 50 (List.length times);
  List.iter (fun t -> check Alcotest.bool "time >= 0" true (t >= 0)) times;
  ignore
    (List.fold_left
       (fun prev t ->
         check Alcotest.bool "non-decreasing" true (t >= prev);
         t)
       min_int times)

(* ---------------- traced pool runs ---------------- *)

let spark_some_work () =
  let module S = Repro_exec.Strategies in
  let xs = List.init 64 (fun i -> i) in
  List.fold_left ( + ) 0 (S.par_map (fun x -> x * x) xs)

let traced_run ?(cores = 2) ?(gc = false) () =
  let tr = Tracer.create ~gc_events:true ~ncaps:cores () in
  Tracer.enable tr;
  let p = Pool.create ~cores ~tracer:tr () in
  let v =
    Pool.run p (fun () ->
        let v = spark_some_work () in
        if gc then begin
          (* land minor+major GC spans inside the traced window *)
          ignore (Sys.opaque_identity (Array.init 100_000 (fun i -> Some i)));
          Gc.minor ();
          Gc.full_major ()
        end;
        v)
  in
  Pool.shutdown p;
  Tracer.disable tr;
  check Alcotest.int "result" (List.fold_left ( + ) 0 (List.init 64 (fun i -> i * i))) v;
  (tr, p)

let ledger_balances_with_tracing_on () =
  let _, p = traced_run () in
  let e = Pool.events p in
  check Alcotest.int "created = run + fizzled" e.Pool.sparks_created
    (e.Pool.sparks_run + e.Pool.sparks_fizzled);
  let per = Pool.worker_events p in
  check Alcotest.int "two worker rows" 2 (Array.length per);
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 per in
  check Alcotest.int "rows sum to total (created)" e.Pool.sparks_created
    (sum (fun (w : Pool.events) -> w.Pool.sparks_created));
  check Alcotest.int "rows sum to total (run)" e.Pool.sparks_run
    (sum (fun (w : Pool.events) -> w.Pool.sparks_run))

let tracer_undersized_rejected () =
  let tr = Tracer.create ~gc_events:false ~ncaps:1 () in
  Alcotest.check_raises "pool wider than tracer"
    (Invalid_argument
       "Pool.create: tracer has 1 buffer(s) but the pool wants 2")
    (fun () -> ignore (Pool.create ~cores:2 ~tracer:tr ()))

(* ---------------- Chrome export ---------------- *)

let chrome_shape () =
  let tr, _ = traced_run ~gc:true () in
  let log = Tracer.to_eventlog tr in
  let doc = Chrome.of_eventlog ~ncaps:2 log in
  (* round-trip through the serializer and parser: the file a user
     loads in Perfetto is exactly this string *)
  let parsed = Json_in.parse (Json_out.to_string doc) in
  let events =
    match Option.bind (Json_in.member "traceEvents" parsed) Json_in.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents array"
  in
  check Alcotest.bool "has events" true (List.length events > 0);
  let slices_per_tid = Hashtbl.create 4 in
  let saw_gc = ref false in
  List.iter
    (fun ev ->
      let str k = Option.bind (Json_in.member k ev) Json_in.to_string in
      (* every event carries the four required keys *)
      let ph = match str "ph" with Some p -> p | None -> Alcotest.fail "missing ph" in
      (match Option.bind (Json_in.member "ts" ev) Json_in.to_float with
      | Some ts -> check Alcotest.bool "ts >= 0" true (ts >= 0.0)
      | None -> Alcotest.fail "missing ts");
      (match Option.bind (Json_in.member "pid" ev) Json_in.to_int with
      | Some _ -> ()
      | None -> Alcotest.fail "missing pid");
      let tid =
        match Option.bind (Json_in.member "tid" ev) Json_in.to_int with
        | Some t -> t
        | None -> Alcotest.fail "missing tid"
      in
      if ph = "X" then begin
        Hashtbl.replace slices_per_tid tid
          (1 + Option.value ~default:0 (Hashtbl.find_opt slices_per_tid tid));
        (match Option.bind (Json_in.member "dur" ev) Json_in.to_float with
        | Some d -> check Alcotest.bool "dur >= 0" true (d >= 0.0)
        | None -> Alcotest.fail "slice missing dur");
        match str "name" with
        | Some n when String.length n >= 3 && String.sub n 0 3 = "gc:" ->
            saw_gc := true
        | _ -> ()
      end)
    events;
  (* at least one slice on every domain's track *)
  for tid = 0 to 1 do
    check Alcotest.bool
      (Printf.sprintf "worker %d has a slice" tid)
      true
      (Option.value ~default:0 (Hashtbl.find_opt slices_per_tid tid) > 0)
  done;
  check Alcotest.bool "GC spans from Runtime_events on the timeline" true !saw_gc

let eventlog_to_trace_renders () =
  let tr, _ = traced_run () in
  let log = Tracer.to_eventlog tr in
  let trace = Eventlog.to_trace ~ncaps:2 log in
  let path = Filename.temp_file "repro_hw_trace" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Repro_trace.Render_svg.to_file ~title:"test" trace path;
      let ic = open_in path in
      let head = really_input_string ic (min 64 (in_channel_length ic)) in
      close_in ic;
      check Alcotest.bool "SVG written" true
        (String.length head > 4 && String.sub head 0 4 = "<svg"))

(* ---------------- profile ---------------- *)

let profile_report_sane () =
  let tr, _ = traced_run ~gc:true () in
  let log = Tracer.to_eventlog tr in
  let r = Profile.analyze (Profile.of_eventlog ~ncaps:2 log) in
  check Alcotest.bool "wall > 0" true (r.Profile.wall_us > 0.0);
  check Alcotest.bool "has worker rows" true (List.length r.Profile.workers > 0);
  List.iter
    (fun (w : Profile.worker_row) ->
      check Alcotest.bool "util in [0,100]" true
        (w.Profile.util_pct >= 0.0 && w.Profile.util_pct <= 100.0);
      check Alcotest.bool "busy <= wall" true (w.Profile.busy_us <= r.Profile.wall_us +. 1.0))
    r.Profile.workers;
  check Alcotest.bool "spark granularity observed" true
    (r.Profile.spark_granularity.Profile.count > 0);
  (* the report renders *)
  check Alcotest.bool "report nonempty" true
    (String.length (Profile.to_string r) > 0)

(* ---------------- Json_in ---------------- *)

let json_in_roundtrip () =
  let doc =
    Json_out.Obj
      [
        ("s", Json_out.Str "a\"b\\c\ntab\t");
        ("i", Json_out.Int (-42));
        ("f", Json_out.Float 1.5);
        ("b", Json_out.Bool true);
        ("nil", Json_out.Null);
        ("xs", Json_out.List [ Json_out.Int 1; Json_out.Int 2 ]);
        ("o", Json_out.Obj [ ("k", Json_out.Str "v") ]);
      ]
  in
  let p = Json_in.parse (Json_out.to_string doc) in
  check Alcotest.(option string) "string escapes" (Some "a\"b\\c\ntab\t")
    (Option.bind (Json_in.member "s" p) Json_in.to_string);
  check Alcotest.(option int) "int" (Some (-42))
    (Option.bind (Json_in.member "i" p) Json_in.to_int);
  check Alcotest.(option (float 1e-9)) "float" (Some 1.5)
    (Option.bind (Json_in.member "f" p) Json_in.to_float);
  check Alcotest.(option int) "list length" (Some 2)
    (Option.map List.length (Option.bind (Json_in.member "xs" p) Json_in.to_list));
  check Alcotest.(option string) "nested" (Some "v")
    (Option.bind
       (Option.bind (Json_in.member "o" p) (Json_in.member "k"))
       Json_in.to_string)

let json_in_rejects_garbage () =
  let fails s =
    match Json_in.parse s with
    | _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
    | exception Json_in.Parse_error _ -> ()
  in
  fails "";
  fails "{";
  fails "[1,]";
  fails "{\"a\":1} trailing";
  fails "\"unterminated";
  fails "nul"

let json_in_unicode () =
  (* \u escapes incl. a surrogate pair -> UTF-8 bytes *)
  let p = Json_in.parse {|"Aé😀"|} in
  check Alcotest.(option string) "utf8" (Some "A\xc3\xa9\xf0\x9f\x98\x80")
    (Json_in.to_string p)

let suite =
  ( "tracer",
    [
      test_case "ring wrap-around keeps most recent events" `Quick
        wraparound_keeps_most_recent;
      test_case "disabled tracer records nothing" `Quick disabled_records_nothing;
      test_case "merged timestamps are monotone" `Quick merged_timestamps_monotone;
      test_case "created = run + fizzled with tracing on" `Quick
        ledger_balances_with_tracing_on;
      test_case "pool rejects undersized tracer" `Quick tracer_undersized_rejected;
      test_case "Chrome JSON shape (ph/ts/pid/tid, slices, GC)" `Quick
        chrome_shape;
      test_case "hardware eventlog renders via Trace/SVG" `Quick
        eventlog_to_trace_renders;
      test_case "profile report is sane" `Quick profile_report_sane;
      test_case "json_in round-trips json_out" `Quick json_in_roundtrip;
      test_case "json_in rejects malformed input" `Quick json_in_rejects_garbage;
      test_case "json_in decodes unicode escapes" `Quick json_in_unicode;
    ] )
