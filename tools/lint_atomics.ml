(* Atomics-discipline lint for the executor (wired as `dune build @lint`).

   The concurrency correctness toolkit (lib/check) can only model-check
   code whose atomic operations go through the Repro_shim.Tatomic shim —
   a raw Stdlib.Atomic call is invisible to the DPOR scheduler and the
   race detector.  This lint keeps the library and binaries honest:

   - `Atomic.` (including `Stdlib.Atomic.`) is forbidden outside the
     shim itself (lib/shim) and the checker (lib/check, whose tracing
     cells ARE the instrumentation);
   - `Obj.magic` is forbidden everywhere scanned — it defeats both the
     type system and any hope of sound analysis;
   - `ignore (Domain.spawn` is forbidden: a spawned-and-forgotten
     domain can never be joined, so shutdown invariants (the spark
     ledger, quiescent counters) become unenforceable.

   Occurrences inside comments and string literals are ignored.  The
   scanner is syntactic by design: it runs in milliseconds, needs no
   compiler-libs, and the few legitimate uses live behind the allowlist
   rather than behind per-site pragmas. *)

let violations = ref 0

let report file line msg =
  incr violations;
  Printf.eprintf "%s:%d: %s\n" file line msg

(* Strip OCaml comments (nested, and quote-aware inside them is not
   needed for our patterns) and string literals, preserving newlines so
   reported line numbers stay exact.  Char literals like '"' are kept
   verbatim: a double quote inside a char literal is always the three-
   token form '"' and is recognised to avoid opening a bogus string. *)
let strip_comments_and_strings (s : string) : string =
  let n = String.length s in
  let buf = Buffer.create n in
  let keep c = Buffer.add_char buf (if c = '\n' then '\n' else ' ') in
  let rec code i =
    if i >= n then ()
    else if i + 1 < n && s.[i] = '(' && s.[i + 1] = '*' then begin
      keep ' ';
      keep ' ';
      comment 1 (i + 2)
    end
    else if s.[i] = '"' then begin
      keep ' ';
      string_lit (i + 1)
    end
    else if i + 2 < n && s.[i] = '\'' && s.[i + 1] = '"' && s.[i + 2] = '\''
    then begin
      (* the char literal '"' *)
      Buffer.add_string buf "' '";
      code (i + 3)
    end
    else begin
      Buffer.add_char buf s.[i];
      code (i + 1)
    end
  and comment depth i =
    if i >= n then ()
    else if i + 1 < n && s.[i] = '(' && s.[i + 1] = '*' then begin
      keep ' ';
      keep ' ';
      comment (depth + 1) (i + 2)
    end
    else if i + 1 < n && s.[i] = '*' && s.[i + 1] = ')' then begin
      keep ' ';
      keep ' ';
      if depth = 1 then code (i + 2) else comment (depth - 1) (i + 2)
    end
    else begin
      keep s.[i];
      comment depth (i + 1)
    end
  and string_lit i =
    if i >= n then ()
    else if s.[i] = '\\' && i + 1 < n then begin
      keep ' ';
      keep ' ';
      string_lit (i + 2)
    end
    else if s.[i] = '"' then begin
      keep ' ';
      code (i + 1)
    end
    else begin
      keep s.[i];
      string_lit (i + 1)
    end
  in
  code 0;
  Buffer.contents buf

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Find [needle] at a module-path boundary: the preceding character must
   not be an identifier character or '.', so `Tatomic.get` and
   `Sched.Atomic.get` don't trip the `Atomic.` rule, while a bare
   `Atomic.get` and `Stdlib.Atomic.get` do (the latter via its own
   `Atomic.` occurrence being preceded by '.', so we special-case the
   `Stdlib.` prefix). *)
let find_bare ~needle line =
  let n = String.length line and m = String.length needle in
  let prefixed_by p i =
    let lp = String.length p in
    i >= lp && String.sub line (i - lp) lp = p
  in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = needle then
      let bare =
        i = 0
        || (not (is_ident_char line.[i - 1]))
           && (line.[i - 1] <> '.' || prefixed_by "Stdlib." i)
      in
      if bare then Some i else go (i + 1)
    else go (i + 1)
  in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Paths are compared with '/' separators; dune runs this from _build
   with paths like ../lib/exec/pool.ml. *)
let allowlisted path =
  let has sub =
    let n = String.length path and m = String.length sub in
    let rec go i = i + m <= n && (String.sub path i m = sub || go (i + 1)) in
    go 0
  in
  has "lib/shim/" || has "lib/check/"

let lint_file path =
  let text = strip_comments_and_strings (read_file path) in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if not (allowlisted path) then (
        match find_bare ~needle:"Atomic." line with
        | Some _ ->
            report path lineno
              "raw Atomic. use: go through the Repro_shim.Tatomic shim so \
               lib/check can trace it"
        | None -> ());
      (match find_bare ~needle:"Obj.magic" line with
      | Some _ -> report path lineno "Obj.magic defeats the type system"
      | None -> ());
      match find_bare ~needle:"ignore (Domain.spawn" line with
      | Some _ ->
          report path lineno
            "discarded Domain.spawn handle: the domain can never be joined"
      | None -> ())
    lines

let rec walk path =
  if Sys.is_directory path then begin
    let base = Filename.basename path in
    if String.length base > 0 && base.[0] <> '.' && base <> "_build" then
      Array.iter
        (fun entry -> walk (Filename.concat path entry))
        (Sys.readdir path)
  end
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then lint_file path

(* Self-test: the scanner must flag these shapes... *)
let must_flag =
  [
    "let c = Atomic.make 0";
    "let v = Stdlib.Atomic.get c";
    "let x = Obj.magic y";
    "ignore (Domain.spawn f)";
    "(* ok *) Atomic.set c 1";
  ]

(* ...and must not flag these. *)
let must_pass =
  [
    "let v = A.get c (* Atomic.get *)";
    "let s = \"Atomic.make in a string\"";
    "module A = Repro_shim.Tatomic.Real";
    "let v = Sched.Atomic.get c";
    "let t = Tatomic.name";
    "let d = Domain.spawn f in Domain.join d";
  ]

let self_test () =
  let scan snippet =
    let t = strip_comments_and_strings snippet in
    find_bare ~needle:"Atomic." t <> None
    || find_bare ~needle:"Obj.magic" t <> None
    || find_bare ~needle:"ignore (Domain.spawn" t <> None
  in
  List.iter
    (fun s ->
      if not (scan s) then begin
        Printf.eprintf "lint self-test: should have flagged %S\n" s;
        exit 2
      end)
    must_flag;
  List.iter
    (fun s ->
      if scan s then begin
        Printf.eprintf "lint self-test: should not have flagged %S\n" s;
        exit 2
      end)
    must_pass

let () =
  self_test ();
  let roots =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib"; "bin" ] | _ :: r -> r
  in
  List.iter walk roots;
  if !violations > 0 then begin
    Printf.eprintf "lint: %d violation(s)\n" !violations;
    exit 1
  end
