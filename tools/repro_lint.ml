(* Command-line driver for the two-phase analyzer (lib/analysis), wired
   as `dune build @lint` and usable standalone:

     repro_lint [--baseline FILE] [--cache FILE] [--rule ID[,ID...]]...
                [--since REF] [--json] [--sarif FILE] [--list-rules]
                [ROOT]...

   Scans every .ml under the given roots (default: lib bin), summarises
   each file (digest-cached when --cache names a file), links the
   summaries, runs the rule registry, and subtracts the suppression
   baseline.

   --since REF scopes the report to the files git says changed since
   REF plus their reverse call-graph dependents: the whole tree is
   still summarised (the digest cache absorbs the cost) and linked, so
   cross-module rules keep their global view, but only findings in the
   changed slice gate.  This is the incremental mode the
   tools/pre-commit hook runs.

   Exit codes:
     0  clean
     1  fresh (non-baselined) findings
     2  no fresh findings, but stale or duplicate baseline entries —
        the baseline must shrink with the code it excuses
     3  usage or baseline syntax errors *)

module Engine = Repro_analysis.Engine
module Rules = Repro_analysis.Rules
module Baseline = Repro_analysis.Baseline
module Json = Repro_util.Json_out

let split_rules s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let () =
  let baseline_path = ref None in
  let cache_path = ref None in
  let since = ref None in
  let rule_ids = ref [] in
  let json = ref false in
  let sarif_path = ref None in
  let list_rules = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun s -> baseline_path := Some s),
        "FILE Suppression baseline (rule path:line#hash -- justification)" );
      ( "--cache",
        Arg.String (fun s -> cache_path := Some s),
        "FILE Summary cache keyed by file digest (created if absent)" );
      ( "--since",
        Arg.String (fun s -> since := Some s),
        "REF Report only on files changed since git REF plus their          call-graph dependents" );
      ( "--rule",
        Arg.String (fun s -> rule_ids := split_rules s @ !rule_ids),
        "ID[,ID...] Run only these rules (repeatable, comma-separable)" );
      ("--json", Arg.Set json, " Emit the JSON report on stdout");
      ( "--sarif",
        Arg.String (fun s -> sarif_path := Some s),
        "FILE Also write a SARIF 2.1.0 report to FILE" );
      ("--list-rules", Arg.Set list_rules, " List rule ids and exit");
    ]
  in
  let usage = "repro_lint [options] [ROOT]..." in
  Arg.parse spec (fun r -> roots := r :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Rules.t) ->
        Printf.printf "%-24s %-7s %s\n" r.id
          (Repro_analysis.Finding.severity_to_string r.severity)
          r.doc)
      Rules.all;
    exit 0
  end;
  let rules =
    match !rule_ids with
    | [] -> Rules.all
    | ids ->
        List.rev_map
          (fun id ->
            match Rules.find id with
            | Some r -> r
            | None ->
                Printf.eprintf "repro_lint: unknown rule %S (known: %s)\n" id
                  (String.concat ", " Rules.ids);
                exit 3)
          ids
  in
  let baseline =
    match !baseline_path with
    | None -> []
    | Some p -> (
        try Baseline.load p
        with Sys_error msg | Failure msg ->
          Printf.eprintf "repro_lint: %s\n" msg;
          exit 3)
  in
  let roots = match List.rev !roots with [] -> [ "lib"; "bin" ] | rs -> rs in
  let since_files =
    match !since with
    | None -> None
    | Some ref_ -> (
        try Some (Engine.changed_since ref_)
        with Failure msg ->
          Printf.eprintf "repro_lint: --since %s: %s\n" ref_ msg;
          exit 3)
  in
  let report =
    Engine.run ~baseline ?cache_file:!cache_path ?since_files ~rules roots
  in
  (match !sarif_path with
  | Some path -> Json.to_file path (Engine.sarif_report ~rules report)
  | None -> ());
  if !json then print_string (Json.to_string (Engine.json_report ~rules report) ^ "\n")
  else print_string (Engine.text_report report);
  if report.Engine.fresh <> [] then exit 1
  else if report.Engine.stale <> [] || report.Engine.duplicate_entries <> []
  then exit 2
