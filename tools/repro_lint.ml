(* Command-line driver for the AST-level analyzer (lib/analysis), wired
   as `dune build @lint` and usable standalone:

     repro_lint [--baseline FILE] [--rule ID]... [--json] [--sarif FILE]
                [--list-rules] [ROOT]...

   Scans every .ml under the given roots (default: lib bin), runs the
   rule registry, subtracts the suppression baseline, and exits 1 if
   any fresh finding remains (2 on usage/baseline errors).  This
   replaces the PR 2 line-regex scanner tools/lint_atomics.ml: the
   same three disciplines (raw Atomic, Obj.magic, discarded
   Domain.spawn) are now AST-checked — see test/fixtures/analysis for
   the ported seeded violations — alongside spark-purity,
   blocking-in-worker and discarded-future. *)

module Engine = Repro_analysis.Engine
module Rules = Repro_analysis.Rules
module Baseline = Repro_analysis.Baseline
module Json = Repro_util.Json_out

let () =
  let baseline_path = ref None in
  let rule_ids = ref [] in
  let json = ref false in
  let sarif_path = ref None in
  let list_rules = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun s -> baseline_path := Some s),
        "FILE Suppression baseline (rule path:line -- justification)" );
      ( "--rule",
        Arg.String (fun s -> rule_ids := s :: !rule_ids),
        "ID Run only this rule (repeatable)" );
      ("--json", Arg.Set json, " Emit the JSON report on stdout");
      ( "--sarif",
        Arg.String (fun s -> sarif_path := Some s),
        "FILE Also write a SARIF 2.1.0 report to FILE" );
      ("--list-rules", Arg.Set list_rules, " List rule ids and exit");
    ]
  in
  let usage = "repro_lint [options] [ROOT]..." in
  Arg.parse spec (fun r -> roots := r :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Rules.t) ->
        Printf.printf "%-20s %-7s %s\n" r.id
          (Repro_analysis.Finding.severity_to_string r.severity)
          r.doc)
      Rules.all;
    exit 0
  end;
  let rules =
    match !rule_ids with
    | [] -> Rules.all
    | ids ->
        List.rev_map
          (fun id ->
            match Rules.find id with
            | Some r -> r
            | None ->
                Printf.eprintf "repro_lint: unknown rule %S (known: %s)\n" id
                  (String.concat ", " Rules.ids);
                exit 2)
          ids
  in
  let baseline =
    match !baseline_path with
    | None -> []
    | Some p -> (
        try Baseline.load p
        with Sys_error msg | Failure msg ->
          Printf.eprintf "repro_lint: %s\n" msg;
          exit 2)
  in
  let roots = match List.rev !roots with [] -> [ "lib"; "bin" ] | rs -> rs in
  let report = Engine.run ~baseline ~rules roots in
  (match !sarif_path with
  | Some path -> Json.to_file path (Engine.sarif_report ~rules report)
  | None -> ());
  if !json then print_string (Json.to_string (Engine.json_report ~rules report) ^ "\n")
  else print_string (Engine.text_report report);
  if report.Engine.fresh <> [] then exit 1
